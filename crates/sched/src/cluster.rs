//! Cluster assignment (bottom-up-greedy, after Ellis' BUG as used in the
//! Multiflow compiler) and explicit inter-cluster move insertion.
//!
//! Operations are placed on clusters in priority order, scoring each
//! legal cluster by (a) how many operand values would have to travel and
//! (b) estimated load balance. Cross-cluster reads of non-resident values
//! then get explicit copy operations — the "explicit move in a prior
//! instruction" of the paper's template — which consume an ALU slot in
//! the destination cluster and one cycle of latency. Resident values
//! (loop constants) are instead broadcast to every reading cluster at
//! loop setup, costing register pressure there but no per-iteration move.

use crate::ddg::Ddg;
use crate::loopcode::{FuClass, LoopCode, OpOrigin, SOp};
use cfp_ir::{Operand, Vreg};
use cfp_machine::{MachineResources, ALU_LATENCY};
use std::collections::{HashMap, HashSet};

/// The result of cluster assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The loop code with move ops appended and uses rewritten.
    pub code: LoopCode,
    /// Cluster of each op (indexed like `code.ops`).
    pub cluster_of_op: Vec<u32>,
    /// Home cluster of every value (defs, live-ins, and move copies).
    /// Resident values are homed where first read but readable anywhere.
    pub home_of: HashMap<Vreg, u32>,
    /// Number of inserted inter-cluster moves.
    pub move_count: usize,
}

/// Assign `code` to the machine's clusters.
///
/// # Panics
/// Panics if an op has no legal cluster (e.g. a multiply on a machine
/// whose IMUL count is zero — excluded by `ArchSpec` validation).
#[must_use]
pub fn assign(code: &LoopCode, ddg: &Ddg, machine: &MachineResources) -> Assignment {
    let nc = machine.cluster_count();
    let n = code.ops.len();
    let resident: HashSet<Vreg> = code.resident.iter().copied().collect();

    // Priority order: critical-path height, then original position.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| ddg.height[b].cmp(&ddg.height[a]).then(a.cmp(&b)));

    let mut cluster_of_op = vec![0_u32; n];
    let mut home_of: HashMap<Vreg, u32> = HashMap::new();
    let mut alu_load = vec![0_f64; nc];
    let mut mem_load = vec![0_f64; nc];

    if nc > 1 {
        for &i in &order {
            let op = &code.ops[i];
            let mut best: Option<(f64, u32)> = None;
            for c in 0..nc {
                if !allowed(op, c, machine) {
                    continue;
                }
                let comm: f64 = op
                    .uses
                    .iter()
                    .filter(|u| !resident.contains(u))
                    .filter(|u| {
                        home_of
                            .get(u)
                            .is_some_and(|&h| h != u32::try_from(c).expect("small"))
                    })
                    .count() as f64;
                let balance = match op.class {
                    FuClass::Mem(_) => mem_load[c],
                    _ => alu_load[c] / f64::from(machine.clusters[c].alus.max(1)),
                };
                let score = comm * 2.0 + balance;
                if best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, u32::try_from(c).expect("small")));
                }
            }
            let (_, c) = best.expect("every op has a legal cluster");
            cluster_of_op[i] = c;
            match op.class {
                FuClass::Mem(_) => mem_load[c as usize] += 1.0,
                _ => alu_load[c as usize] += 1.0,
            }
            if let Some(d) = op.def {
                home_of.insert(d, c);
            }
            // Provisionally home live-in operands at their first consumer.
            for u in &op.uses {
                if !resident.contains(u) {
                    home_of.entry(*u).or_insert(c);
                }
            }
        }
        // A carried value stays in the cluster that computes the carried-out
        // register; the carried-in register therefore lives there too.
        for &(inp, out) in &code.carried {
            if inp != out {
                if let Some(&h) = home_of.get(&out) {
                    home_of.insert(inp, h);
                }
            }
        }
    } else {
        for v in code
            .ops
            .iter()
            .filter_map(|o| o.def)
            .chain(code.live_ins.iter().copied())
        {
            home_of.insert(v, 0);
        }
    }
    // Any live-in nobody read yet still needs a home.
    for &v in &code.live_ins {
        home_of.entry(v).or_insert(0);
    }

    // Insert moves for cross-cluster reads of non-resident values.
    let mut new_code = code.clone();
    let mut new_clusters = cluster_of_op.clone();
    let mut move_count = 0_usize;
    let mut copy_cache: HashMap<(Vreg, u32), Vreg> = HashMap::new();
    if nc > 1 {
        #[allow(clippy::needless_range_loop)] // indexes two parallel vecs
        for i in 0..n {
            let c = cluster_of_op[i];
            let uses = new_code.ops[i].uses.clone();
            for u in uses {
                if resident.contains(&u) {
                    continue;
                }
                let h = home_of[&u];
                if h == c {
                    continue;
                }
                let copy = *copy_cache.entry((u, c)).or_insert_with(|| {
                    let v = Vreg(new_code.vreg_limit);
                    new_code.vreg_limit += 1;
                    new_code.ops.push(SOp {
                        origin: OpOrigin::Move { src: u, to: c },
                        inst: None,
                        class: FuClass::Alu,
                        latency: ALU_LATENCY,
                        def: Some(v),
                        uses: vec![u],
                    });
                    new_clusters.push(c);
                    home_of.insert(v, c);
                    move_count += 1;
                    v
                });
                rewrite_use(&mut new_code.ops[i], u, copy);
            }
        }
    }

    Assignment {
        code: new_code,
        cluster_of_op: new_clusters,
        home_of,
        move_count,
    }
}

fn allowed(op: &SOp, c: usize, machine: &MachineResources) -> bool {
    let cl = &machine.clusters[c];
    match op.class {
        FuClass::Alu => cl.alus > 0,
        FuClass::Mul => cl.mul_capable > 0,
        FuClass::Mem(level) => machine.mem_ports(c, level) > 0,
        FuClass::Branch => cl.has_branch,
    }
}

fn rewrite_use(op: &mut SOp, from: Vreg, to: Vreg) {
    for u in &mut op.uses {
        if *u == from {
            *u = to;
        }
    }
    if let Some(inst) = &mut op.inst {
        inst.map_operands(|o| match o {
            Operand::Reg(v) if v == from => Operand::Reg(to),
            other => other,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn assigned(src: &str, spec: &ArchSpec) -> Assignment {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let ddg = Ddg::build(&code);
        assign(&code, &ddg, &m)
    }

    const WIDE: &str = "kernel w(in u8 s[], out i32 d[]) {
        loop i {
            var a = s[4*i] * 3;
            var b = s[4*i+1] * 5;
            var c = s[4*i+2] * 7;
            var e = s[4*i+3] * 9;
            d[i] = (a + b) + (c + e);
        }
    }";

    #[test]
    fn single_cluster_needs_no_moves() {
        let a = assigned(WIDE, &ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap());
        assert_eq!(a.move_count, 0);
        assert!(a.cluster_of_op.iter().all(|&c| c == 0));
    }

    #[test]
    fn multi_cluster_respects_fu_placement() {
        let spec = ArchSpec::new(4, 2, 128, 1, 4, 4).unwrap();
        let a = assigned(WIDE, &spec);
        let m = MachineResources::from_spec(&spec);
        for (i, op) in a.code.ops.iter().enumerate() {
            assert!(
                allowed(op, a.cluster_of_op[i] as usize, &m),
                "op {i} ({:?}) on illegal cluster {}",
                op.class,
                a.cluster_of_op[i]
            );
        }
    }

    #[test]
    fn cross_cluster_values_get_moves() {
        // Two clusters: the only IMUL sits on cluster 0, the only L2 port
        // on cluster 1, so every load's value must cross to be multiplied.
        let spec = ArchSpec::new(2, 1, 128, 1, 4, 2).unwrap();
        let a = assigned(WIDE, &spec);
        assert!(a.move_count > 0, "mul and memory are on different clusters");
        // Every rewritten use must now be local or resident — except the
        // moves themselves, which are the cross-cluster transfers.
        let resident: HashSet<Vreg> = a.code.resident.iter().copied().collect();
        for (i, op) in a.code.ops.iter().enumerate() {
            if matches!(op.origin, OpOrigin::Move { .. }) {
                continue;
            }
            for u in &op.uses {
                if resident.contains(u) {
                    continue;
                }
                assert_eq!(
                    a.home_of[u], a.cluster_of_op[i],
                    "op {i} reads {u} from another cluster"
                );
            }
        }
    }

    #[test]
    fn branch_lands_on_cluster_zero() {
        let spec = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap();
        let a = assigned(WIDE, &spec);
        let bi = a.code.branch_index();
        assert_eq!(a.cluster_of_op[bi], 0);
    }

    #[test]
    fn carried_inputs_live_with_their_producers() {
        let spec = ArchSpec::new(8, 4, 256, 1, 4, 2).unwrap();
        let a = assigned(
            "kernel c(in i32 s[], out i32 d[]) {
                var acc = 0;
                loop i { acc = acc + s[i]; d[i] = acc; }
            }",
            &spec,
        );
        for &(inp, out) in &a.code.carried {
            if inp != out {
                assert_eq!(a.home_of[&inp], a.home_of[&out], "{inp}/{out}");
            }
        }
    }
}
