//! Cluster assignment (bottom-up-greedy, after Ellis' BUG as used in the
//! Multiflow compiler) and explicit inter-cluster move insertion.
//!
//! Operations are placed on clusters in priority order, scoring each
//! legal cluster by (a) how many operand values would have to travel and
//! (b) estimated load balance. Cross-cluster reads of non-resident values
//! then get explicit copy operations — the "explicit move in a prior
//! instruction" of the paper's template — which consume an ALU slot in
//! the destination cluster and one cycle of latency. Resident values
//! (loop constants) are instead broadcast to every reading cluster at
//! loop setup, costing register pressure there but no per-iteration move.

use crate::ddg::Ddg;
use crate::loopcode::{FuClass, LoopCode, OpOrigin, SOp};
use crate::scratch::SchedScratch;
use cfp_ir::{Operand, Vreg};
use cfp_machine::MachineResources;
use std::collections::HashMap;

/// The result of cluster assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The loop code with move ops appended and uses rewritten.
    pub code: LoopCode,
    /// Cluster of each op (indexed like `code.ops`).
    pub cluster_of_op: Vec<u32>,
    /// Home cluster of every value (defs, live-ins, and move copies).
    /// Resident values are homed where first read but readable anywhere.
    pub home_of: HashMap<Vreg, u32>,
    /// Number of inserted inter-cluster moves.
    pub move_count: usize,
}

/// Assign `code` to the machine's clusters.
///
/// # Panics
/// Panics if an op has no legal cluster (e.g. a multiply on a machine
/// whose IMUL count is zero — excluded by `ArchSpec` validation).
#[must_use]
pub fn assign(code: &LoopCode, ddg: &Ddg, machine: &MachineResources) -> Assignment {
    assign_in(code, ddg, machine, &mut SchedScratch::new())
}

/// [`assign`] with working memory from `scratch`: the priority order,
/// value-home table, per-cluster load estimates, and copy-vreg cache all
/// live in reused flat arrays instead of fresh maps.
///
/// # Panics
/// As [`assign`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn assign_in(
    code: &LoopCode,
    ddg: &Ddg,
    machine: &MachineResources,
    scratch: &mut SchedScratch,
) -> Assignment {
    const NO_HOME: u32 = u32::MAX;
    let nc = machine.cluster_count();
    let n = code.ops.len();
    let nv = code.vreg_limit as usize;

    let SchedScratch {
        order,
        home,
        vflags,
        alu_load,
        mem_load,
        copy_of,
        uses_tmp,
        ..
    } = scratch;

    // Bit 0 of `vflags[v]`: v is resident (a broadcast loop constant).
    vflags.clear();
    vflags.resize(nv, 0);
    for v in &code.resident {
        vflags[v.index()] |= 1;
    }
    // `home[v]` is the value's home cluster, `NO_HOME` until assigned.
    // Copy vregs are appended past `nv` as moves are inserted.
    home.clear();
    home.resize(nv, NO_HOME);

    // Priority order: critical-path height, then original position.
    order.clear();
    order.extend(0..u32::try_from(n).expect("op count fits u32"));
    order.sort_unstable_by(|&a, &b| {
        ddg.height[b as usize]
            .cmp(&ddg.height[a as usize])
            .then(a.cmp(&b))
    });

    let mut cluster_of_op = vec![0_u32; n];
    alu_load.clear();
    alu_load.resize(nc, 0.0);
    mem_load.clear();
    mem_load.resize(nc, 0.0);

    if nc > 1 {
        for &i in order.iter() {
            let op = &code.ops[i as usize];
            let mut best: Option<(f64, u32)> = None;
            for c in 0..nc {
                if !allowed(op, c, machine) {
                    continue;
                }
                let cu = u32::try_from(c).expect("small");
                let comm: f64 = op
                    .uses
                    .iter()
                    .filter(|u| vflags[u.index()] & 1 == 0)
                    .filter(|u| {
                        let h = home[u.index()];
                        h != NO_HOME && h != cu
                    })
                    .count() as f64;
                let balance = if op.class.is_mem() {
                    mem_load[c]
                } else {
                    alu_load[c] / f64::from(machine.clusters[c].alus.max(1))
                };
                let score = comm * 2.0 + balance;
                if best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, cu));
                }
            }
            let (_, c) = best.expect("every op has a legal cluster");
            cluster_of_op[i as usize] = c;
            if op.class.is_mem() {
                mem_load[c as usize] += 1.0;
            } else {
                alu_load[c as usize] += 1.0;
            }
            if let Some(d) = op.def {
                home[d.index()] = c;
            }
            // Provisionally home live-in operands at their first consumer.
            for u in &op.uses {
                if vflags[u.index()] & 1 == 0 && home[u.index()] == NO_HOME {
                    home[u.index()] = c;
                }
            }
        }
        // A carried value stays in the cluster that computes the carried-out
        // register; the carried-in register therefore lives there too.
        for &(inp, out) in &code.carried {
            if inp != out && home[out.index()] != NO_HOME {
                home[inp.index()] = home[out.index()];
            }
        }
    } else {
        for v in code
            .ops
            .iter()
            .filter_map(|o| o.def)
            .chain(code.live_ins.iter().copied())
        {
            home[v.index()] = 0;
        }
    }
    // Any live-in nobody read yet still needs a home.
    for &v in &code.live_ins {
        if home[v.index()] == NO_HOME {
            home[v.index()] = 0;
        }
    }

    // Insert moves for cross-cluster reads of non-resident values.
    // `copy_of[v·nc + c]` caches the copy vreg of `v` on cluster `c`;
    // only original vregs are ever looked up (each op's uses are
    // snapshotted before its own rewrite), so `nv · nc` entries suffice.
    let mut new_code = code.clone();
    let mut new_clusters = cluster_of_op.clone();
    let mut move_count = 0_usize;
    if nc > 1 {
        copy_of.clear();
        copy_of.resize(nv * nc, NO_HOME);
        for (i, &c) in cluster_of_op.iter().enumerate().take(n) {
            uses_tmp.clear();
            uses_tmp.extend_from_slice(&new_code.ops[i].uses);
            for &u in uses_tmp.iter() {
                if vflags[u.index()] & 1 != 0 {
                    continue;
                }
                let h = home[u.index()];
                if h == c {
                    continue;
                }
                let slot = u.index() * nc + c as usize;
                let copy = if copy_of[slot] != NO_HOME {
                    Vreg(copy_of[slot])
                } else {
                    let v = Vreg(new_code.vreg_limit);
                    new_code.vreg_limit += 1;
                    new_code.ops.push(SOp {
                        origin: OpOrigin::Move { src: u, to: c },
                        inst: None,
                        class: FuClass::Alu,
                        latency: machine.latency(FuClass::Alu),
                        def: Some(v),
                        uses: vec![u],
                    });
                    new_clusters.push(c);
                    home.push(c);
                    copy_of[slot] = v.0;
                    move_count += 1;
                    v
                };
                rewrite_use(&mut new_code.ops[i], u, copy);
            }
        }
    }

    let home_of: HashMap<Vreg, u32> = home
        .iter()
        .enumerate()
        .filter(|&(_, &h)| h != NO_HOME)
        .map(|(v, &h)| (Vreg(u32::try_from(v).expect("vreg fits u32")), h))
        .collect();

    Assignment {
        code: new_code,
        cluster_of_op: new_clusters,
        home_of,
        move_count,
    }
}

fn allowed(op: &SOp, c: usize, machine: &MachineResources) -> bool {
    // Uniform unit-count lookup: the machine description says which
    // unit class the op occupies; a cluster is legal iff it has one.
    let unit = machine.mdes.op(op.class).unit;
    machine.mdes.units(c, unit) > 0
}

fn rewrite_use(op: &mut SOp, from: Vreg, to: Vreg) {
    for u in &mut op.uses {
        if *u == from {
            *u = to;
        }
    }
    if let Some(inst) = &mut op.inst {
        inst.map_operands(|o| match o {
            Operand::Reg(v) if v == from => Operand::Reg(to),
            other => other,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;
    use std::collections::HashSet;

    fn assigned(src: &str, spec: &ArchSpec) -> Assignment {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let ddg = Ddg::build(&code);
        assign(&code, &ddg, &m)
    }

    const WIDE: &str = "kernel w(in u8 s[], out i32 d[]) {
        loop i {
            var a = s[4*i] * 3;
            var b = s[4*i+1] * 5;
            var c = s[4*i+2] * 7;
            var e = s[4*i+3] * 9;
            d[i] = (a + b) + (c + e);
        }
    }";

    #[test]
    fn single_cluster_needs_no_moves() {
        let a = assigned(WIDE, &ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap());
        assert_eq!(a.move_count, 0);
        assert!(a.cluster_of_op.iter().all(|&c| c == 0));
    }

    #[test]
    fn multi_cluster_respects_fu_placement() {
        let spec = ArchSpec::new(4, 2, 128, 1, 4, 4).unwrap();
        let a = assigned(WIDE, &spec);
        let m = MachineResources::from_spec(&spec);
        for (i, op) in a.code.ops.iter().enumerate() {
            assert!(
                allowed(op, a.cluster_of_op[i] as usize, &m),
                "op {i} ({:?}) on illegal cluster {}",
                op.class,
                a.cluster_of_op[i]
            );
        }
    }

    #[test]
    fn cross_cluster_values_get_moves() {
        // Two clusters: the only IMUL sits on cluster 0, the only L2 port
        // on cluster 1, so every load's value must cross to be multiplied.
        let spec = ArchSpec::new(2, 1, 128, 1, 4, 2).unwrap();
        let a = assigned(WIDE, &spec);
        assert!(a.move_count > 0, "mul and memory are on different clusters");
        // Every rewritten use must now be local or resident — except the
        // moves themselves, which are the cross-cluster transfers.
        let resident: HashSet<Vreg> = a.code.resident.iter().copied().collect();
        for (i, op) in a.code.ops.iter().enumerate() {
            if matches!(op.origin, OpOrigin::Move { .. }) {
                continue;
            }
            for u in &op.uses {
                if resident.contains(u) {
                    continue;
                }
                assert_eq!(
                    a.home_of[u], a.cluster_of_op[i],
                    "op {i} reads {u} from another cluster"
                );
            }
        }
    }

    #[test]
    fn branch_lands_on_cluster_zero() {
        let spec = ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap();
        let a = assigned(WIDE, &spec);
        let bi = a.code.branch_index();
        assert_eq!(a.cluster_of_op[bi], 0);
    }

    #[test]
    fn carried_inputs_live_with_their_producers() {
        let spec = ArchSpec::new(8, 4, 256, 1, 4, 2).unwrap();
        let a = assigned(
            "kernel c(in i32 s[], out i32 d[]) {
                var acc = 0;
                loop i { acc = acc + s[i]; d[i] = acc; }
            }",
            &spec,
        );
        for &(inp, out) in &a.code.carried {
            if inp != out {
                assert_eq!(a.home_of[&inp], a.home_of[&out], "{inp}/{out}");
            }
        }
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_assignments() {
        let mut scratch = SchedScratch::new();
        for spec in [
            ArchSpec::new(2, 1, 128, 1, 4, 2).unwrap(),
            ArchSpec::new(8, 4, 256, 1, 4, 4).unwrap(),
            ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap(),
        ] {
            let k = compile_kernel(WIDE, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = LoopCode::build(&k, &m);
            let ddg = Ddg::build(&code);
            let fresh = assign(&code, &ddg, &m);
            let reused = assign_in(&code, &ddg, &m, &mut scratch);
            assert_eq!(fresh, reused, "{spec}");
        }
    }
}
