//! Modulo scheduling (software pipelining) — an ablation scheduler.
//!
//! The paper's compiler line (Multiflow trace scheduling) ran loops
//! unrolled with a barrier at the back edge, which is exactly what
//! [`crate::list`] models. Software pipelining overlaps iterations
//! instead, initiating one every *II* cycles. This module implements a
//! simplified iterative modulo scheduler (after Rau) so the repository
//! can quantify what the barrier discipline costs on each benchmark and
//! machine:
//!
//! * recurrence-bound kernels (Floyd–Steinberg's error chain) gain
//!   almost nothing — their II is the dependence cycle;
//! * resource-bound kernels (color conversion, median) collapse to the
//!   resource bound, shedding the latency-drain tail the barrier pays.
//!
//! The II search starts at `max(ResMII, RecMII)` and walks upward, but it
//! does not walk blindly: ops are placed in a fixed order, so the
//! per-resource demand of the prefix up to a failed placement is the same
//! at every II. That demand is carried out of the failed attempt and
//! turned into a capacity bound — any II with `units × II < demand` must
//! fail the same way — letting the search jump straight past provably
//! infeasible IIs instead of probing each one (port-starved machines used
//! to scan hundreds). [`ModuloSchedule::ii_attempts`] reports how many
//! IIs were actually attempted. Fuel is spent per placement probe on
//! attempted IIs only; skipped IIs cost nothing (the found schedule is
//! identical, and the modulo scheduler is off the exploration's budgeted
//! path).
//!
//! Scope: this is an *analytical* scheduler. Its output is validated
//! structurally (every dependence satisfies
//! `slot(to) ≥ slot(from) + lat − II·ω`, no modulo resource is
//! oversubscribed, and a register-pressure estimate accounts for
//! lifetimes spanning `⌈L/II⌉` in-flight instances) — it is not executed
//! by the cycle-accurate simulator, which models the barrier machine.
//! See `EXPERIMENTS.md` ("pipelining" exhibit).

use crate::cluster::Assignment;
use crate::ddg::Ddg;
use crate::error::{Fuel, SchedError};
use crate::loopcode::{FuClass, LoopCode};
use crate::scratch::{row_has_room, row_take, SchedScratch};
use cfp_ir::Vreg;
use cfp_machine::MachineResources;
use std::collections::HashMap;

/// A dependence with an iteration distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmegaDep {
    /// Producer op.
    pub from: usize,
    /// Consumer op.
    pub to: usize,
    /// Latency.
    pub lat: u32,
    /// Iteration distance (0 = same iteration).
    pub omega: u32,
}

/// The result of modulo scheduling.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Flat slot of each op (stage = slot / ii, modulo slot = slot % ii).
    pub slots: Vec<u32>,
    /// The lower bound `max(ResMII, RecMII)` the search started from.
    pub mii: u32,
    /// Estimated registers needed per cluster, counting `⌈L/II⌉`
    /// overlapping instances per value.
    pub pressure_estimate: Vec<u32>,
    /// Candidate IIs actually attempted (provably infeasible IIs are
    /// skipped by the capacity bound and not counted).
    pub ii_attempts: u32,
}

impl ModuloSchedule {
    /// Number of pipeline stages.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.slots
            .iter()
            .map(|&s| s / self.ii + 1)
            .max()
            .unwrap_or(1)
    }
}

/// Build the full dependence set: the intra-iteration graph plus
/// loop-carried register edges (carried pairs, ω = 1) and loop-carried
/// memory edges (affine distance on same-array conflicts; conservative
/// ω = 1 for non-affine references).
#[must_use]
pub fn omega_deps(code: &LoopCode, ddg: &Ddg) -> Vec<OmegaDep> {
    let mut deps: Vec<OmegaDep> = ddg
        .edges()
        .iter()
        .map(|d| OmegaDep {
            from: d.from as usize,
            to: d.to as usize,
            lat: d.lat,
            omega: 0,
        })
        .collect();

    // Carried register values: producer of `out` feeds every reader of
    // `in` one iteration later.
    let mut def_of: HashMap<Vreg, usize> = HashMap::new();
    for (i, op) in code.ops.iter().enumerate() {
        if let Some(d) = op.def {
            def_of.insert(d, i);
        }
    }
    for &(inp, out) in &code.carried {
        let Some(&producer) = def_of.get(&out) else {
            continue; // pass-through carry: no producer op
        };
        for (i, op) in code.ops.iter().enumerate() {
            if op.uses.contains(&inp) {
                deps.push(OmegaDep {
                    from: producer,
                    to: i,
                    lat: code.ops[producer].latency,
                    omega: 1,
                });
            }
        }
    }

    // Loop-carried memory dependences: same array, conflicting elements
    // k iterations apart.
    let mems = code.mem_ops();
    for &a in &mems {
        for &b in &mems {
            let (ia, ib) = (
                code.ops[a].inst.expect("mem ops carry insts"),
                code.ops[b].inst.expect("mem ops carry insts"),
            );
            let (ma, mb) = (ia.mem().expect("mem"), ib.mem().expect("mem"));
            if ma.array != mb.array {
                continue;
            }
            if !ia.is_store() && !ib.is_store() {
                continue;
            }
            let omega = if ma.is_affine() && mb.is_affine() && ma.coeff == mb.coeff {
                if ma.coeff == 0 {
                    continue; // same fixed element: intra edges cover it
                }
                // a at iteration i touches coeff·i + oa; b at iteration
                // i+k touches coeff·(i+k) + ob: conflict iff
                // coeff·k = oa − ob.
                let delta = ma.offset - mb.offset;
                if delta % ma.coeff != 0 {
                    continue;
                }
                let k = delta / ma.coeff;
                if k <= 0 {
                    continue; // same-iteration (intra) or b-before-a direction
                }
                // A distance beyond u32 never constrains a real II;
                // saturate instead of trusting the cast.
                u32::try_from(k).unwrap_or(u32::MAX)
            } else {
                // Differing strides or a dynamic index: conservative.
                1
            };
            let lat = if ia.is_store() && !ib.is_store() {
                code.ops[a].latency // RAW across iterations
            } else {
                1 // WAR/WAW ordering
            };
            deps.push(OmegaDep {
                from: a,
                to: b,
                lat,
                omega,
            });
        }
    }
    deps
}

/// The resource-constrained lower bound on II.
#[must_use]
pub fn res_mii(code: &LoopCode, assignment: &Assignment, machine: &MachineResources) -> u32 {
    let nc = machine.cluster_count();
    let mut alu = vec![0_u32; nc];
    let mut mul = vec![0_u32; nc];
    let mut mem = vec![[0_u32; 2]; nc]; // busy cycles per level
    let mut branch = 0_u32;
    for (i, op) in code.ops.iter().enumerate() {
        let c = assignment.cluster_of_op[i] as usize;
        match op.class {
            FuClass::Alu => alu[c] += 1,
            FuClass::Mul => {
                alu[c] += 1;
                mul[c] += 1;
            }
            // A port is busy for the reservation duration the machine
            // description prescribes (the full latency when the port
            // does not pipeline, one cycle when it does).
            FuClass::MemL1 | FuClass::MemL2 => {
                let li = usize::from(op.class == FuClass::MemL2);
                mem[c][li] += machine.reserved_cycles(op.class);
            }
            FuClass::Branch => branch += 1,
        }
    }
    let mut bound = branch.max(1);
    for c in 0..nc {
        let cl = &machine.clusters[c];
        if cl.alus > 0 {
            bound = bound.max(alu[c].div_ceil(cl.alus));
        }
        if cl.mul_capable > 0 {
            bound = bound.max(mul[c].div_ceil(cl.mul_capable));
        }
        if cl.l1_ports > 0 {
            bound = bound.max(mem[c][0].div_ceil(cl.l1_ports));
        }
        if cl.l2_ports > 0 {
            bound = bound.max(mem[c][1].div_ceil(cl.l2_ports));
        }
    }
    bound
}

/// The recurrence-constrained lower bound on II: the smallest II such
/// that no dependence cycle has positive slack deficit, found by binary
/// search with a longest-path feasibility check.
#[must_use]
pub fn rec_mii(n_ops: usize, deps: &[OmegaDep], hi_hint: u32) -> u32 {
    let feasible = |ii: u32| -> bool {
        // Positive-cycle detection on weights (lat − II·ω) via bounded
        // Bellman-Ford relaxation of longest paths.
        let mut dist = vec![0_i64; n_ops];
        for _round in 0..n_ops {
            let mut changed = false;
            for d in deps {
                let w = i64::from(d.lat) - i64::from(ii) * i64::from(d.omega);
                if dist[d.from] + w > dist[d.to] {
                    dist[d.to] = dist[d.from] + w;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false // still relaxing after n rounds: positive cycle
    };
    let mut lo = 1_u32;
    let mut hi = hi_hint.max(2);
    while !feasible(hi) {
        hi *= 2;
        if hi > (1 << 20) {
            return hi; // defensive: unbounded recurrence
        }
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

/// Flat modulo-reservation-table indexing: one bitmask row per
/// (resource, residue). Resources are numbered `0..4·nc + 1`:
/// ALU per cluster, then IMUL per cluster, then the two memory levels
/// per cluster, then the single branch unit. The same numbering indexes
/// the demand counters the II-skip bound reads.
#[inline]
fn res_alu(c: usize) -> usize {
    c
}
#[inline]
fn res_mul(nc: usize, c: usize) -> usize {
    nc + c
}
#[inline]
fn res_mem(nc: usize, c: usize, li: usize) -> usize {
    2 * nc + 2 * c + li
}
#[inline]
fn res_branch(nc: usize) -> usize {
    4 * nc
}

/// Attempt modulo scheduling; returns `None` only if no II up to
/// `4 × list length` admits a schedule under this (non-backtracking)
/// heuristic.
#[must_use]
pub fn modulo_schedule(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    list_length: u32,
) -> Option<ModuloSchedule> {
    // Unlimited fuel never exhausts; keep the total signature anyway.
    try_modulo_schedule(
        assignment,
        ddg,
        machine,
        list_length,
        &mut Fuel::unlimited(),
    )
    .unwrap_or_default()
}

/// [`modulo_schedule`] under a step budget: each placement attempt at
/// each candidate II spends fuel, so a machine whose II search space is
/// pathologically large degrades to [`SchedError::FuelExhausted`]
/// instead of stalling an exploration worker.
///
/// # Errors
/// [`SchedError::FuelExhausted`] when `fuel` runs dry mid-search.
pub fn try_modulo_schedule(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    list_length: u32,
    fuel: &mut Fuel,
) -> Result<Option<ModuloSchedule>, SchedError> {
    try_modulo_schedule_in(
        assignment,
        ddg,
        machine,
        list_length,
        fuel,
        &mut SchedScratch::new(),
    )
}

/// [`try_modulo_schedule_in`] recording one `modulo` span: the II the
/// search settled on (or a `feasible: false` / error token when it did
/// not), the lower bound it started from, how many candidate IIs it
/// tried, and the fuel the search charged. With a disabled trace this
/// is exactly [`try_modulo_schedule_in`].
///
/// # Errors
/// As [`try_modulo_schedule`].
pub fn try_modulo_schedule_traced_in(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    list_length: u32,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Result<Option<ModuloSchedule>, SchedError> {
    use cfp_obs::{Stage, Value};
    let before = fuel.spent();
    let t0 = trace.start();
    let out = try_modulo_schedule_in(assignment, ddg, machine, list_length, fuel, scratch);
    let steps = fuel.spent() - before;
    match &out {
        Ok(Some(ms)) => trace.stage(
            Stage::Modulo,
            t0,
            &[
                ("ii", Value::U64(u64::from(ms.ii))),
                ("mii", Value::U64(u64::from(ms.mii))),
                ("ii_attempts", Value::U64(u64::from(ms.ii_attempts))),
                ("steps", Value::U64(steps)),
            ],
        ),
        Ok(None) => trace.stage(
            Stage::Modulo,
            t0,
            &[
                ("feasible", Value::Bool(false)),
                ("steps", Value::U64(steps)),
            ],
        ),
        Err(e) => trace.stage(
            Stage::Modulo,
            t0,
            &[
                ("error", Value::Str(e.token())),
                ("steps", Value::U64(steps)),
            ],
        ),
    }
    out
}

/// [`try_modulo_schedule`] with working memory from `scratch`: the
/// reservation rows, slot array, intra-dependence index, and demand
/// counters live in reused flat buffers.
///
/// # Errors
/// As [`try_modulo_schedule`].
#[allow(clippy::too_many_lines)] // one self-contained search loop
pub fn try_modulo_schedule_in(
    assignment: &Assignment,
    ddg: &Ddg,
    machine: &MachineResources,
    list_length: u32,
    fuel: &mut Fuel,
    scratch: &mut SchedScratch,
) -> Result<Option<ModuloSchedule>, SchedError> {
    let code = &assignment.code;
    let n = code.ops.len();
    let nc = machine.cluster_count();
    let deps = omega_deps(code, ddg);
    let max_lat = code.ops.iter().map(|o| o.latency).max().unwrap_or(1);
    let mii = res_mii(code, assignment, machine)
        .max(rec_mii(n, &deps, list_length))
        .max(max_lat);

    let SchedScratch {
        mod_rows,
        mod_slots,
        mod_pred_row,
        mod_pred_from,
        mod_pred_lat,
        mod_demand,
        ..
    } = scratch;

    // Intra-iteration predecessors in CSR form, grouped by consumer —
    // built once, shared by every II attempt.
    mod_pred_row.clear();
    mod_pred_row.resize(n + 1, 0);
    for d in &deps {
        if d.omega == 0 {
            mod_pred_row[d.to + 1] += 1;
        }
    }
    for i in 0..n {
        mod_pred_row[i + 1] += mod_pred_row[i];
    }
    let m_intra = mod_pred_row[n] as usize;
    mod_pred_from.clear();
    mod_pred_from.resize(m_intra, 0);
    mod_pred_lat.clear();
    mod_pred_lat.resize(m_intra, 0);
    mod_slots.clear(); // borrow as the scatter cursor before its real job
    mod_slots.extend_from_slice(&mod_pred_row[..n]);
    for d in &deps {
        if d.omega == 0 {
            let at = mod_slots[d.to] as usize;
            mod_pred_from[at] = u32::try_from(d.from).expect("op count fits u32");
            mod_pred_lat[at] = d.lat;
            mod_slots[d.to] += 1;
        }
    }

    let nres = 4 * nc + 1;
    let limit = 4 * list_length.max(mii);
    let mut ii_attempts = 0_u32;
    let mut ii = mii;
    'outer: while ii <= limit {
        ii_attempts += 1;
        let stride = ii as usize;
        mod_rows.clear();
        mod_rows.resize(nres * stride, 0);
        mod_demand.clear();
        mod_demand.resize(nres, 0);
        mod_slots.clear();
        mod_slots.resize(n, u32::MAX);
        // Placement order: original index order, which is a topological
        // order over intra deps by construction of the loop code. The
        // order is II-independent, which is what makes the demand prefix
        // reusable as a skip bound.
        for i in 0..n {
            let op = &code.ops[i];
            let c = assignment.cluster_of_op[i] as usize;
            let cl = &machine.clusters[c];
            // Account this op's demand up front so a failure's bound
            // covers the op that needs the room, not just its prefix.
            match op.class {
                FuClass::Alu => mod_demand[res_alu(c)] += 1,
                FuClass::Mul => {
                    mod_demand[res_alu(c)] += 1;
                    mod_demand[res_mul(nc, c)] += 1;
                }
                FuClass::MemL1 | FuClass::MemL2 => {
                    let li = usize::from(op.class == FuClass::MemL2);
                    mod_demand[res_mem(nc, c, li)] += u64::from(machine.reserved_cycles(op.class));
                }
                FuClass::Branch => mod_demand[res_branch(nc)] += 1,
            }
            let est = (mod_pred_row[i] as usize..mod_pred_row[i + 1] as usize)
                .map(|e| mod_slots[mod_pred_from[e] as usize].saturating_add(mod_pred_lat[e]))
                .max()
                .unwrap_or(0);
            let mut placed = false;
            for slot in est..est.saturating_add(ii) {
                fuel.spend(1)?;
                let s = (slot % ii) as usize;
                let ok = match op.class {
                    FuClass::Alu => {
                        let row = &mut mod_rows[res_alu(c) * stride + s];
                        if row_has_room(*row, cl.alus) {
                            row_take(row, cl.alus);
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::Mul => {
                        if row_has_room(mod_rows[res_alu(c) * stride + s], cl.alus)
                            && row_has_room(mod_rows[res_mul(nc, c) * stride + s], cl.mul_capable)
                        {
                            row_take(&mut mod_rows[res_alu(c) * stride + s], cl.alus);
                            row_take(&mut mod_rows[res_mul(nc, c) * stride + s], cl.mul_capable);
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::Branch => {
                        let row = &mut mod_rows[res_branch(nc) * stride + s];
                        let units = u32::from(cl.has_branch);
                        if row_has_room(*row, units) {
                            row_take(row, units);
                            true
                        } else {
                            false
                        }
                    }
                    FuClass::MemL1 | FuClass::MemL2 => {
                        let li = usize::from(op.class == FuClass::MemL2);
                        let ports = if li == 0 { cl.l1_ports } else { cl.l2_ports };
                        let base = res_mem(nc, c, li) * stride;
                        // An access occupies its port for the reserved
                        // duration; one reservation longer than the II
                        // would collide with itself.
                        let reserved = machine.reserved_cycles(op.class);
                        if reserved > ii {
                            false
                        } else if (0..reserved).all(|dt| {
                            row_has_room(mod_rows[base + ((slot + dt) % ii) as usize], ports)
                        }) {
                            for dt in 0..reserved {
                                row_take(&mut mod_rows[base + ((slot + dt) % ii) as usize], ports);
                            }
                            true
                        } else {
                            false
                        }
                    }
                };
                if ok {
                    mod_slots[i] = slot;
                    placed = true;
                    break;
                }
            }
            if !placed {
                // The probe window spanned every residue, so this class
                // is out of capacity. Demand is II-independent (fixed
                // placement order), so any II whose total capacity
                // `units × II` is below the demand fails the same way —
                // jump straight past all of them.
                let bound = |demand: u64, units: u32| -> Option<u32> {
                    if units == 0 {
                        return None; // the resource does not exist at any II
                    }
                    Some(u32::try_from(demand.div_ceil(u64::from(units))).unwrap_or(u32::MAX))
                };
                let next = match op.class {
                    FuClass::Alu => bound(mod_demand[res_alu(c)], cl.alus),
                    FuClass::Mul => match (
                        bound(mod_demand[res_alu(c)], cl.alus),
                        bound(mod_demand[res_mul(nc, c)], cl.mul_capable),
                    ) {
                        (Some(a), Some(m)) => Some(a.max(m)),
                        _ => None,
                    },
                    FuClass::Branch => bound(mod_demand[res_branch(nc)], u32::from(cl.has_branch)),
                    FuClass::MemL1 | FuClass::MemL2 => {
                        let li = usize::from(op.class == FuClass::MemL2);
                        let ports = if li == 0 { cl.l1_ports } else { cl.l2_ports };
                        bound(mod_demand[res_mem(nc, c, li)], ports)
                    }
                };
                let Some(next) = next else {
                    return Ok(None);
                };
                ii = (ii + 1).max(next);
                continue 'outer;
            }
        }
        // Check every dependence (including carried ones) at this II.
        let ok = deps.iter().all(|d| {
            i64::from(mod_slots[d.to])
                >= i64::from(mod_slots[d.from]) + i64::from(d.lat)
                    - i64::from(ii) * i64::from(d.omega)
        });
        if !ok {
            ii += 1;
            continue;
        }
        let pressure_estimate = pipeline_pressure(code, assignment, mod_slots, ii, machine);
        return Ok(Some(ModuloSchedule {
            ii,
            slots: mod_slots.clone(),
            mii,
            pressure_estimate,
            ii_attempts,
        }));
    }
    Ok(None)
}

/// Register-pressure estimate under pipelining: a value live `L` flat
/// cycles needs `⌈L/II⌉` simultaneous instances.
fn pipeline_pressure(
    code: &LoopCode,
    assignment: &Assignment,
    slots: &[u32],
    ii: u32,
    machine: &MachineResources,
) -> Vec<u32> {
    let mut last_use: HashMap<Vreg, u32> = HashMap::new();
    for (i, op) in code.ops.iter().enumerate() {
        for u in &op.uses {
            let e = last_use.entry(*u).or_insert(slots[i]);
            *e = (*e).max(slots[i]);
        }
    }
    let mut per_cluster = vec![0_u32; machine.cluster_count()];
    for (i, op) in code.ops.iter().enumerate() {
        let Some(d) = op.def else { continue };
        let c = assignment.cluster_of_op[i] as usize;
        let start = slots[i];
        let end = last_use.get(&d).copied().unwrap_or(start).max(start) + 1;
        let live = end - start;
        per_cluster[c] += live.div_ceil(ii).max(1);
    }
    per_cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::assign;
    use crate::loopcode::LoopCode;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn pipeline(src: &str, spec: &ArchSpec) -> (ModuloSchedule, u32, Vec<OmegaDep>, usize) {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let list = crate::list::schedule(&a, &ddg, &m);
        let deps = omega_deps(&a.code, &ddg);
        let n = a.code.ops.len();
        let ms = modulo_schedule(&a, &ddg, &m, list.length).expect("schedulable");
        (ms, list.length, deps, n)
    }

    const PARALLEL: &str = "kernel p(in u8 s[], out i32 d[]) {
        loop i { d[i] = s[i] * 5 + s[i + 1] * 7; }
    }";

    const SERIAL: &str = "kernel s(in u8 src[], out i32 d[]) {
        var e = 1;
        loop i {
            e = ((e * 7 + 8) >> 4) + src[i];
            d[i] = e;
        }
    }";

    #[test]
    fn parallel_kernels_pipeline_far_below_the_barrier() {
        // Long memory latency makes the barrier's drain expensive; the
        // pipeline initiates every ResMII cycles instead.
        let spec = ArchSpec::new(8, 4, 256, 4, 8, 1).unwrap();
        let (ms, list_len, deps, _) = pipeline(PARALLEL, &spec);
        assert!(ms.ii * 2 <= list_len, "II {} vs barrier {list_len}", ms.ii);
        // Structural validity: every dependence holds at the achieved II.
        for d in &deps {
            assert!(
                i64::from(ms.slots[d.to])
                    >= i64::from(ms.slots[d.from]) + i64::from(d.lat)
                        - i64::from(ms.ii) * i64::from(d.omega),
                "{d:?}"
            );
        }
    }

    #[test]
    fn serial_recurrences_bound_the_ii() {
        let spec = ArchSpec::new(8, 4, 256, 4, 4, 1).unwrap();
        let (ms, _, _, n) = pipeline(SERIAL, &spec);
        // The e-chain is ~4 ops (mul 2 + add + shr + add): II cannot be 1.
        assert!(ms.ii >= 4, "II {} below the recurrence", ms.ii);
        assert!(ms.mii >= 4);
        assert_eq!(ms.slots.len(), n);
    }

    #[test]
    fn res_mii_reflects_port_saturation() {
        let k = compile_kernel(PARALLEL, &[]).unwrap();
        let spec = ArchSpec::new(8, 4, 256, 1, 8, 1).unwrap();
        let m = MachineResources::from_spec(&spec);
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        // 2 loads + 1 store × 8 cycles on one non-pipelined port ≥ 24.
        assert!(res_mii(&a.code, &a, &m) >= 24);
    }

    #[test]
    fn rec_mii_binary_search_matches_hand_value() {
        // A 2-cycle: a→b (lat 3, ω0), b→a (lat 3, ω1): II ≥ 6.
        let deps = [
            OmegaDep {
                from: 0,
                to: 1,
                lat: 3,
                omega: 0,
            },
            OmegaDep {
                from: 1,
                to: 0,
                lat: 3,
                omega: 1,
            },
        ];
        assert_eq!(rec_mii(2, &deps, 4), 6);
        // No cycles → 1.
        let acyclic = [OmegaDep {
            from: 0,
            to: 1,
            lat: 9,
            omega: 0,
        }];
        assert_eq!(rec_mii(2, &acyclic, 4), 1);
    }

    #[test]
    fn carried_memory_distance_is_computed() {
        // Store at i, load at i+2 (offset −2 difference, coeff 1): ω = 2.
        let k = compile_kernel(
            "kernel m(inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[i + 2];
                    b[i] = x + 1;
                    d[i] = x;
                }
            }",
            &[],
        )
        .unwrap();
        let m = MachineResources::from_spec(&ArchSpec::baseline());
        let code = LoopCode::build(&k, &m);
        let ddg = Ddg::build(&code);
        let deps = omega_deps(&code, &ddg);
        assert!(
            deps.iter().any(|d| d.omega == 2),
            "expected a distance-2 carried memory dependence: {deps:?}"
        );
    }

    #[test]
    fn stages_and_pressure_are_reported() {
        let spec = ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap();
        let (ms, ..) = pipeline(PARALLEL, &spec);
        assert!(ms.stages() >= 1);
        assert_eq!(ms.pressure_estimate.len(), 1);
        assert!(ms.pressure_estimate[0] > 0);
    }

    #[test]
    fn the_ii_skip_never_skips_the_found_ii() {
        // On a port-starved machine the search starts far above the list
        // length; the skip bound must still land on the same II a linear
        // scan finds, while attempting no more IIs than `found − mii + 1`.
        for spec in [
            ArchSpec::new(8, 4, 256, 1, 8, 1).unwrap(),
            ArchSpec::new(2, 1, 64, 1, 4, 1).unwrap(),
            ArchSpec::new(8, 4, 256, 4, 8, 1).unwrap(),
        ] {
            let k = compile_kernel(PARALLEL, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = LoopCode::build(&k, &m);
            let pre = Ddg::build(&code);
            let a = assign(&code, &pre, &m);
            let ddg = Ddg::build(&a.code);
            let list = crate::list::schedule(&a, &ddg, &m);
            let ms = modulo_schedule(&a, &ddg, &m, list.length).expect("schedulable");
            assert!(ms.ii >= ms.mii, "{spec}");
            assert!(
                ms.ii_attempts <= ms.ii - ms.mii + 1,
                "{spec}: {} attempts for II {} from MII {}",
                ms.ii_attempts,
                ms.ii,
                ms.mii
            );
            assert!(ms.ii_attempts >= 1, "{spec}");
        }
    }

    #[test]
    fn scratch_reuse_reproduces_fresh_modulo_schedules() {
        let mut scratch = SchedScratch::new();
        for spec in [
            ArchSpec::new(8, 4, 256, 1, 8, 1).unwrap(),
            ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap(),
        ] {
            let k = compile_kernel(PARALLEL, &[]).unwrap();
            let m = MachineResources::from_spec(&spec);
            let code = LoopCode::build(&k, &m);
            let pre = Ddg::build(&code);
            let a = assign(&code, &pre, &m);
            let ddg = Ddg::build(&a.code);
            let list = crate::list::schedule(&a, &ddg, &m);
            let fresh = modulo_schedule(&a, &ddg, &m, list.length).expect("schedulable");
            let reused = try_modulo_schedule_in(
                &a,
                &ddg,
                &m,
                list.length,
                &mut Fuel::unlimited(),
                &mut scratch,
            )
            .expect("unlimited")
            .expect("schedulable");
            assert_eq!(fresh.ii, reused.ii, "{spec}");
            assert_eq!(fresh.slots, reused.slots, "{spec}");
            assert_eq!(fresh.mii, reused.mii, "{spec}");
            assert_eq!(fresh.ii_attempts, reused.ii_attempts, "{spec}");
        }
    }
}
