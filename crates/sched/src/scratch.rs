//! Reusable scratch buffers for the hot compilation path.
//!
//! The design-space exploration runs the back end once per *unique*
//! `(plan, scheduling signature)` pair — on the order of a thousand
//! compilations per sweep — and every one of them used to allocate its
//! working state from scratch: ready lists, reservation tables,
//! dependence-count arrays, pressure diff arrays, cluster-assignment
//! maps. [`SchedScratch`] owns all of that state instead. A worker
//! thread creates one arena and threads it through
//! [`crate::compile::try_compile_core_in`]; after the first few
//! compilations the buffers have grown to the high-water mark of the
//! sweep and steady-state compilation performs no heap allocation for
//! its working state.
//!
//! Every user of the arena fully re-initializes the ranges it reads, so
//! the buffers carry no information between compilations — a unit that
//! panics mid-compile (the exploration quarantines it) leaves nothing a
//! later unit can observe. Reuse is therefore invisible: schedules,
//! step counts, and fuel verdicts are bit-identical to the
//! allocate-per-call implementation (asserted by
//! `tests/sched_equivalence.rs`).

use crate::ddg::Dep;
use cfp_ir::Vreg;

/// The scratch arena. Create one per worker thread (or use the
/// convenience wrappers that create a throwaway arena per call) and
/// pass it to the `*_in` entry points of the back end.
///
/// The fields are deliberately private: the arena's only contract is
/// "reusable memory"; its contents between calls are unspecified.
#[derive(Debug, Default)]
pub struct SchedScratch {
    // --- list scheduler ---
    pub(crate) pending: Vec<u32>,
    pub(crate) earliest: Vec<u32>,
    pub(crate) issue: Vec<u32>,
    pub(crate) ready: Vec<u64>,
    pub(crate) cal: Vec<Vec<u32>>,
    pub(crate) stash: Vec<u64>,
    pub(crate) op_meta: Vec<u32>,
    pub(crate) port_base: Vec<u32>,
    pub(crate) port_free: Vec<u32>,
    pub(crate) port_busy: Vec<u64>,
    pub(crate) slot_rows: Vec<u64>,
    // --- dependence-graph construction ---
    pub(crate) def_of: Vec<u32>,
    pub(crate) edge_buf: Vec<Dep>,
    pub(crate) mems_tmp: Vec<u32>,
    pub(crate) row_tmp: Vec<u32>,
    pub(crate) indeg: Vec<u32>,
    pub(crate) topo: Vec<u32>,
    // --- cluster assignment ---
    pub(crate) order: Vec<u32>,
    pub(crate) home: Vec<u32>,
    pub(crate) vflags: Vec<u8>,
    pub(crate) alu_load: Vec<f64>,
    pub(crate) mem_load: Vec<f64>,
    pub(crate) copy_of: Vec<u32>,
    pub(crate) uses_tmp: Vec<Vreg>,
    // --- register-pressure analysis ---
    pub(crate) last_use: Vec<u32>,
    pub(crate) reader_mask: Vec<u64>,
    pub(crate) diff: Vec<i32>,
    // --- modulo scheduler ---
    pub(crate) mod_rows: Vec<u64>,
    pub(crate) mod_slots: Vec<u32>,
    pub(crate) mod_pred_row: Vec<u32>,
    pub(crate) mod_pred_from: Vec<u32>,
    pub(crate) mod_pred_lat: Vec<u32>,
    pub(crate) mod_demand: Vec<u64>,
}

impl SchedScratch {
    /// A fresh, empty arena. Buffers grow on first use and are kept.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One `u64` reservation row tracking occupancy of up to `units`
/// identical resources in a cycle (or modulo slot).
///
/// When `units ≤ 64` the row is a unary bitmask — `k` busy units are the
/// low `k` bits — so "any free?" is one popcount and "take one" is a
/// shift-or. Machines wider than 64 units per cluster fall back to using
/// the same word as a plain saturating counter; semantics are identical
/// (these resources are interchangeable — only *how many* are busy
/// matters), just without the single-instruction tests. See DESIGN.md
/// §11 for the capacity discussion.
#[inline]
pub(crate) fn row_has_room(row: u64, units: u32) -> bool {
    if units == 0 {
        return false;
    }
    if units <= 64 {
        row.count_ones() < units
    } else {
        row < u64::from(units)
    }
}

/// Mark one more unit busy in `row`. Caller must have checked
/// [`row_has_room`].
#[inline]
pub(crate) fn row_take(row: &mut u64, units: u32) {
    if units <= 64 {
        *row = (*row << 1) | 1;
    } else {
        *row += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_keys_sort_by_priority_then_low_index() {
        // Descending key order must be highest priority first, lowest
        // index on ties — the ready list's invariant.
        let key = |pri: u32, idx: u32| (u64::from(pri) << 32) | u64::from(u32::MAX - idx);
        let mut keys = [key(7, 3), key(7, 1), key(9, 5)];
        keys.sort_unstable_by(|a, b| b.cmp(a));
        let idx = |k: u64| u32::MAX - (k as u32);
        assert_eq!(idx(keys[0]), 5, "highest priority first");
        assert_eq!(idx(keys[1]), 1, "low index wins the tie");
        assert_eq!(idx(keys[2]), 3);
    }

    #[test]
    fn rows_count_up_to_their_capacity() {
        for units in [1_u32, 3, 64, 65, 200] {
            let mut row = 0_u64;
            for _ in 0..units {
                assert!(row_has_room(row, units), "units={units}");
                row_take(&mut row, units);
            }
            assert!(!row_has_room(row, units), "units={units} must be full");
        }
        assert!(!row_has_room(0, 0), "zero units never has room");
    }
}
