//! Cycle-accurate execution of a scheduled loop.
//!
//! The simulator is the back end's proof of correctness: it executes the
//! placed operations cycle by cycle with real register values, *checking*
//! on the way that
//!
//! * no value is read before its producer's latency has elapsed,
//! * every read is cluster-local (resident values excepted — they are
//!   broadcast at setup),
//! * no cycle oversubscribes ALUs, IMUL slots, memory ports, or the
//!   branch unit,
//!
//! and its memory image must equal the reference interpreter's, for every
//! architecture (asserted across the design space by the integration
//! tests).

use crate::compile::CompileResult;
use crate::loopcode::{FuClass, OpOrigin};
use cfp_ir::{Inst, Interpreter, Kernel, MemImage, Operand, Vreg};
use cfp_machine::{MachineResources, UnitClass};
use std::error::Error;
use std::fmt;

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Machine cycles consumed (`iterations × schedule length`).
    pub cycles: u64,
    /// Operations executed (moves and loop overhead included).
    pub operations: u64,
}

/// A violation detected during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An operand was read before it was ready.
    NotReady {
        /// Op index.
        op: usize,
        /// The register.
        vreg: Vreg,
        /// The issue cycle of the reader.
        cycle: u32,
    },
    /// An operand lives in a different cluster.
    NonLocal {
        /// Op index.
        op: usize,
        /// The register.
        vreg: Vreg,
    },
    /// A cycle oversubscribes a resource.
    Oversubscribed {
        /// Cycle.
        cycle: u32,
        /// Cluster.
        cluster: u32,
        /// Human-readable resource name.
        what: &'static str,
    },
    /// A memory access faulted.
    Mem(cfp_ir::interp::InterpError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotReady { op, vreg, cycle } => {
                write!(
                    f,
                    "op {op} reads {vreg} at cycle {cycle} before it is ready"
                )
            }
            SimError::NonLocal { op, vreg } => {
                write!(f, "op {op} reads {vreg} from another cluster")
            }
            SimError::Oversubscribed {
                cycle,
                cluster,
                what,
            } => write!(
                f,
                "cycle {cycle} oversubscribes {what} on cluster {cluster}"
            ),
            SimError::Mem(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<cfp_ir::interp::InterpError> for SimError {
    fn from(e: cfp_ir::interp::InterpError) -> Self {
        SimError::Mem(e)
    }
}

/// Execute `iters` iterations of the compiled loop against `mem`.
///
/// # Errors
/// Returns the first [`SimError`] violation — a correct compiler output
/// never produces one.
pub fn simulate(
    kernel: &Kernel,
    result: &CompileResult,
    machine: &MachineResources,
    mem: &mut MemImage,
    iters: u64,
) -> Result<SimStats, SimError> {
    simulate_traced(
        kernel,
        result,
        machine,
        mem,
        iters,
        &mut cfp_obs::UnitTrace::disabled(),
    )
}

/// [`simulate`] recording one `simulate` span with the cycle and
/// operation totals of the run (or an `ok: false` field when the
/// schedule faulted). With a disabled trace this is exactly
/// [`simulate`].
///
/// # Errors
/// As [`simulate`].
pub fn simulate_traced(
    kernel: &Kernel,
    result: &CompileResult,
    machine: &MachineResources,
    mem: &mut MemImage,
    iters: u64,
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Result<SimStats, SimError> {
    use cfp_obs::{Stage, Value};
    let t0 = trace.start();
    let out = simulate_inner(kernel, result, machine, mem, iters);
    match &out {
        Ok(stats) => trace.stage(
            Stage::Simulate,
            t0,
            &[
                ("cycles", Value::U64(stats.cycles)),
                ("operations", Value::U64(stats.operations)),
            ],
        ),
        Err(_) => trace.stage(Stage::Simulate, t0, &[("ok", Value::Bool(false))]),
    }
    out
}

/// Batched [`simulate`]: one kernel and input image, many sibling
/// architectures in one pass. Returns, for each entry, exactly what a
/// scalar `simulate` call on a fresh clone of `base` would have produced
/// — the same verdict (bit for bit, including the error variant) and the
/// same final memory image.
///
/// What the batch amortizes over the entries:
/// * the preamble interpretation runs **once** (its values and memory
///   effects depend only on the kernel and `base`);
/// * the placement order is computed once per *distinct* schedule, and
///   entries sharing a `CompileResult` (the register axis collapses
///   schedules, so siblings are common) execute the loop once and clone
///   the outcome;
/// * per-entry work that genuinely differs — resource validation against
///   each machine — still runs per entry.
///
/// Failure isolation matches the scalar path: a validation failure
/// returns the untouched `base` clone (scalar validation runs before the
/// preamble), and a preamble fault fails every validated entry with the
/// preamble's partial memory state.
#[must_use]
pub fn simulate_batch(
    kernel: &Kernel,
    entries: &[(&CompileResult, &MachineResources)],
    base: &MemImage,
    iters: u64,
) -> Vec<(Result<SimStats, SimError>, MemImage)> {
    let mut out: Vec<Option<(Result<SimStats, SimError>, MemImage)>> =
        entries.iter().map(|_| None).collect();

    // Validation first: it is the one stage that runs before any memory
    // effect, so a failing entry hands back `base` unchanged.
    for (slot, &(result, machine)) in out.iter_mut().zip(entries) {
        if let Err(e) = validate_resources(result, machine) {
            *slot = Some((Err(e), base.clone()));
        }
    }

    // The preamble is entry-independent: run it once on a shared image.
    let mut pre_mem = base.clone();
    let preamble_vals = match Interpreter::new().preamble_values(kernel, &mut pre_mem) {
        Ok(vals) => vals,
        Err(e) => {
            for slot in &mut out {
                if slot.is_none() {
                    *slot = Some((Err(SimError::Mem(e.clone())), pre_mem.clone()));
                }
            }
            return drain_slots(out);
        }
    };

    // Execute each distinct schedule once; later siblings (same
    // `CompileResult` reference) clone the verdict and image.
    for i in 0..entries.len() {
        if out[i].is_some() {
            continue;
        }
        let result = entries[i].0;
        let order = placement_order(result);
        let mut mem = pre_mem.clone();
        let run = run_schedule(result, &preamble_vals, &order, &mut mem, iters);
        for j in (i + 1)..entries.len() {
            if out[j].is_none() && std::ptr::eq(entries[j].0, result) {
                out[j] = Some((run.clone(), mem.clone()));
            }
        }
        out[i] = Some((run, mem));
    }
    drain_slots(out)
}

/// Unwrap the fully-populated slot vector of [`simulate_batch`].
fn drain_slots<T>(slots: Vec<Option<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|s| {
            // Every path through `simulate_batch` fills every slot
            // before draining.
            #[allow(clippy::expect_used)]
            s.expect("simulate_batch filled every slot")
        })
        .collect()
}

fn simulate_inner(
    kernel: &Kernel,
    result: &CompileResult,
    machine: &MachineResources,
    mem: &mut MemImage,
    iters: u64,
) -> Result<SimStats, SimError> {
    validate_resources(result, machine)?;
    // Setup: run the preamble, latch carried inits, zero the synthetic
    // state (pointers, induction, bound).
    let preamble_vals = Interpreter::new().preamble_values(kernel, mem)?;
    let order = placement_order(result);
    run_schedule(result, &preamble_vals, &order, mem, iters)
}

/// Placement order: by cycle, stores after non-stores within a cycle
/// (loads sample memory at the start of a cycle, stores commit at the
/// end — this is what makes a 0-separation WAR legal). Depends only on
/// the compile result, so a batch over sibling architectures computes it
/// once per distinct schedule.
fn placement_order(result: &CompileResult) -> Vec<usize> {
    let code = &result.assignment.code;
    let mut order: Vec<usize> = (0..code.ops.len()).collect();
    order.sort_by_key(|&i| {
        (
            result.schedule.placements[i].cycle,
            code.ops[i].inst.is_some_and(|x| x.is_store()),
            i,
        )
    });
    order
}

/// The cycle-by-cycle execution loop, after validation and preamble.
fn run_schedule(
    result: &CompileResult,
    preamble_vals: &[i64],
    order: &[usize],
    mem: &mut MemImage,
    iters: u64,
) -> Result<SimStats, SimError> {
    let code = &result.assignment.code;
    let n_vregs = code.vreg_limit as usize;
    let mut vals = vec![0_i64; n_vregs];
    vals[..preamble_vals.len()].copy_from_slice(preamble_vals);

    let resident: std::collections::HashSet<Vreg> = code.resident.iter().copied().collect();
    let defined: std::collections::HashSet<Vreg> = code.ops.iter().filter_map(|o| o.def).collect();

    let mut ready = vec![0_u32; n_vregs];
    let mut stats = SimStats::default();
    for iter in 0..iters {
        for v in &defined {
            ready[v.index()] = u32::MAX;
        }
        for &i in order {
            let op = &code.ops[i];
            let t = result.schedule.placements[i].cycle;
            let cluster = result.schedule.placements[i].cluster;
            // Readiness + locality checks. Move ops are exempt from
            // locality: they *are* the cross-cluster transfers (the
            // template's global connections).
            let is_move = matches!(op.origin, OpOrigin::Move { .. });
            for &u in &op.uses {
                if ready[u.index()] > t {
                    return Err(SimError::NotReady {
                        op: i,
                        vreg: u,
                        cycle: t,
                    });
                }
                if !is_move
                    && !resident.contains(&u)
                    && result
                        .assignment
                        .home_of
                        .get(&u)
                        .copied()
                        .unwrap_or(cluster)
                        != cluster
                {
                    return Err(SimError::NonLocal { op: i, vreg: u });
                }
            }
            execute(op, &mut vals, mem, i64::try_from(iter).expect("few iters"))?;
            if let Some(d) = op.def {
                ready[d.index()] = t + op.latency;
            }
            stats.operations += 1;
        }
        // Iteration boundary: latch carried values (two-phase).
        let next: Vec<i64> = code.carried.iter().map(|&(_, o)| vals[o.index()]).collect();
        for (&(inp, _), v) in code.carried.iter().zip(next) {
            vals[inp.index()] = v;
            ready[inp.index()] = 0;
        }
        stats.cycles += u64::from(result.schedule.length);
    }
    Ok(stats)
}

fn execute(
    op: &crate::loopcode::SOp,
    vals: &mut [i64],
    mem: &mut MemImage,
    iter: i64,
) -> Result<(), SimError> {
    let read = |vals: &[i64], o: Operand| match o {
        Operand::Reg(v) => vals[v.index()],
        Operand::Imm(i) => cfp_ir::wrap32(i),
    };
    match (&op.inst, op.origin) {
        (Some(inst), _) => exec_inst(inst, vals, mem, iter)?,
        (None, OpOrigin::Move { src, .. }) => {
            vals[op.def.expect("moves define").index()] = vals[src.index()];
        }
        (None, OpOrigin::StreamBump(_) | OpOrigin::Induction) => {
            let cur = op.uses[0];
            vals[op.def.expect("bumps define").index()] =
                cfp_ir::wrap32(vals[cur.index()].wrapping_add(1));
        }
        (None, OpOrigin::LoopTest) => {
            let a = read(vals, Operand::Reg(op.uses[0]));
            let b = read(vals, Operand::Reg(op.uses[1]));
            vals[op.def.expect("test defines").index()] = i64::from(a < b);
        }
        (None, OpOrigin::LoopBranch) => {}
        (None, OpOrigin::Body(_)) => unreachable!("body ops carry their inst"),
    }
    Ok(())
}

fn exec_inst(inst: &Inst, vals: &mut [i64], mem: &mut MemImage, iter: i64) -> Result<(), SimError> {
    let read = |vals: &[i64], o: Operand| match o {
        Operand::Reg(v) => vals[v.index()],
        Operand::Imm(i) => cfp_ir::wrap32(i),
    };
    match *inst {
        Inst::Bin { dst, op, a, b } => {
            vals[dst.index()] = op.eval(read(vals, a), read(vals, b));
        }
        Inst::Un { dst, op, a } => vals[dst.index()] = op.eval(read(vals, a)),
        Inst::Cmp { dst, pred, a, b } => {
            vals[dst.index()] = pred.eval(read(vals, a), read(vals, b));
        }
        Inst::Sel {
            dst,
            cond,
            on_true,
            on_false,
        } => {
            vals[dst.index()] = if read(vals, cond) != 0 {
                read(vals, on_true)
            } else {
                read(vals, on_false)
            };
        }
        Inst::Ld { dst, mem: m, ty } => {
            let dynv = m.dyn_index.map_or(0, |d| read(vals, d));
            let idx = m.element_index(iter, dynv);
            let arr = mem.array(m.array.index());
            let raw = usize::try_from(idx)
                .ok()
                .and_then(|i| arr.get(i).copied())
                .ok_or(SimError::Mem(cfp_ir::interp::InterpError::OutOfBounds {
                    array: m.array.index(),
                    index: idx,
                    len: arr.len(),
                    iter: None,
                }))?;
            vals[dst.index()] = ty.extend(raw);
        }
        Inst::St { mem: m, value, ty } => {
            let dynv = m.dyn_index.map_or(0, |d| read(vals, d));
            let idx = m.element_index(iter, dynv);
            let v = ty.truncate(read(vals, value));
            let len = mem.array(m.array.index()).len();
            let slot = usize::try_from(idx)
                .ok()
                .filter(|&i| i < len)
                .ok_or(SimError::Mem(cfp_ir::interp::InterpError::OutOfBounds {
                    array: m.array.index(),
                    index: idx,
                    len,
                    iter: None,
                }))?;
            let data = mem.array_mut(m.array.index());
            data[slot] = v;
        }
    }
    Ok(())
}

/// Structural resource validation (independent of iteration count).
fn validate_resources(result: &CompileResult, machine: &MachineResources) -> Result<(), SimError> {
    let code = &result.assignment.code;
    let nc = machine.cluster_count();
    let len = result.schedule.length as usize;
    // One flat `len × nc` occupancy table per resource (row = cycle).
    let mut alu = vec![0_u32; len * nc];
    let mut mul = vec![0_u32; len * nc];
    let mut branch = vec![0_u32; len * nc];
    let mut mem_busy = [vec![0_u32; len * nc], vec![0_u32; len * nc]];

    for (i, op) in code.ops.iter().enumerate() {
        let p = result.schedule.placements[i];
        let (t, c) = (p.cycle as usize, p.cluster as usize);
        match op.class {
            FuClass::Alu => alu[t * nc + c] += 1,
            FuClass::Mul => {
                alu[t * nc + c] += 1;
                mul[t * nc + c] += 1;
            }
            FuClass::Branch => branch[t * nc + c] += 1,
            // A port is occupied for the reservation duration the
            // machine description prescribes.
            FuClass::MemL1 | FuClass::MemL2 => {
                let li = usize::from(op.class == FuClass::MemL2);
                for dt in 0..(machine.reserved_cycles(op.class) as usize) {
                    if t + dt < len {
                        mem_busy[li][(t + dt) * nc + c] += 1;
                    }
                }
            }
        }
    }
    for t in 0..len {
        for c in 0..nc {
            let cl = &machine.clusters[c];
            let over = |what: &'static str| SimError::Oversubscribed {
                cycle: u32::try_from(t).expect("small"),
                cluster: u32::try_from(c).expect("small"),
                what,
            };
            if alu[t * nc + c] > cl.alus {
                return Err(over(UnitClass::Alu.name()));
            }
            if mul[t * nc + c] > cl.mul_capable {
                return Err(over(UnitClass::Mul.name()));
            }
            if branch[t * nc + c] > u32::from(cl.has_branch) {
                return Err(over(UnitClass::Branch.name()));
            }
            if mem_busy[0][t * nc + c] > cl.l1_ports {
                return Err(over(UnitClass::L1Port.name()));
            }
            if mem_busy[1][t * nc + c] > cl.l2_ports {
                return Err(over(UnitClass::L2Port.name()));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cfp_frontend::compile_kernel;
    use cfp_ir::ArrayKind;
    use cfp_machine::ArchSpec;

    /// Compile for `spec`, simulate, and compare against the interpreter.
    fn check(src: &str, consts: &[(&str, i64)], spec: &ArchSpec, iters: u64) {
        let kernel = compile_kernel(src, consts).unwrap();
        let machine = MachineResources::from_spec(spec);
        let result = compile(&kernel, &machine);

        let data =
            |seed: i64| -> Vec<i64> { (0..256).map(|k| (k * 31 + seed * 17 + 7) % 253).collect() };
        let mut mem_ref = MemImage::for_kernel(&kernel);
        let mut mem_sim = MemImage::for_kernel(&kernel);
        for (i, a) in kernel.arrays.iter().enumerate() {
            if !matches!(a.kind, ArrayKind::Local(_)) {
                mem_ref.bind(i, data(i64::try_from(i).unwrap()));
                mem_sim.bind(i, data(i64::try_from(i).unwrap()));
            }
        }
        Interpreter::new()
            .run(&kernel, &mut mem_ref, iters)
            .unwrap();
        let stats = simulate(&kernel, &result, &machine, &mut mem_sim, iters)
            .unwrap_or_else(|e| panic!("simulation failed on {spec}: {e}"));
        assert_eq!(stats.cycles, iters * u64::from(result.schedule.length));
        for i in 0..kernel.arrays.len() {
            assert_eq!(mem_ref.array(i), mem_sim.array(i), "array {i} on {spec}");
        }
    }

    const KERNELS: &[&str] = &[
        // Plain map.
        "kernel m(in u8 s[], out u8 d[]) { loop i { d[i] = u8(s[i] * 3 + 1); } }",
        // Stencil with window reuse after CSE (none run here, still valid).
        "kernel st(in u8 s[], out i32 d[]) {
            loop i {
                var acc = 0;
                for t in 0..7 { acc = acc + s[i + t] * (2*t + 1); }
                d[i] = acc >> 3;
            }
        }",
        // Carried chain with select.
        "kernel c(in i32 s[], out i32 d[]) {
            var e = 5;
            loop i {
                e = (e * 7 + s[i]) >> 1;
                if e > 200 { e = e - 200; }
                d[i] = e;
            }
        }",
        // In-place error buffer (WAR within the iteration).
        "kernel fs(in u8 s[], inout i16 err[], out u8 d[]) {
            var e = 0;
            loop i {
                var t = err[i + 1];
                e = t + ((e * 7 + 8) >> 4) + s[i];
                err[i] = i16((e * 3 + 8) >> 4);
                d[i] = u8(e > 128 ? 255 : 0);
            }
        }",
    ];

    #[test]
    fn matches_interpreter_on_the_baseline() {
        for src in KERNELS {
            check(src, &[], &ArchSpec::baseline(), 16);
        }
    }

    #[test]
    fn matches_interpreter_on_wide_machines() {
        let spec = ArchSpec::new(8, 4, 256, 2, 4, 1).unwrap();
        for src in KERNELS {
            check(src, &[], &spec, 16);
        }
    }

    #[test]
    fn matches_interpreter_on_clustered_machines() {
        for clusters in [2_u32, 4] {
            let spec = ArchSpec::new(8, 4, 256, 2, 4, clusters).unwrap();
            for src in KERNELS {
                check(src, &[], &spec, 16);
            }
        }
    }

    #[test]
    fn matches_interpreter_on_many_cluster_low_latency_machines() {
        let spec = ArchSpec::new(16, 8, 512, 4, 2, 8).unwrap();
        for src in KERNELS {
            check(src, &[], &spec, 8);
        }
    }

    #[test]
    fn batch_matches_per_entry_scalar_simulation() {
        let specs = [
            ArchSpec::baseline(),
            ArchSpec::new(8, 4, 256, 2, 4, 1).unwrap(),
            ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap(),
            ArchSpec::new(16, 8, 512, 4, 2, 8).unwrap(),
        ];
        for src in KERNELS {
            let kernel = compile_kernel(src, &[]).unwrap();
            let machines: Vec<MachineResources> =
                specs.iter().map(MachineResources::from_spec).collect();
            let results: Vec<CompileResult> =
                machines.iter().map(|m| compile(&kernel, m)).collect();

            let mut base = MemImage::for_kernel(&kernel);
            for (i, a) in kernel.arrays.iter().enumerate() {
                if !matches!(a.kind, ArrayKind::Local(_)) {
                    base.bind(i, (0..256).map(|k| (k * 29 + 11) % 251).collect());
                }
            }

            // Two entries share one compile result on purpose: the batch
            // must execute that schedule once and clone the outcome.
            let entries: Vec<(&CompileResult, &MachineResources)> = results
                .iter()
                .zip(&machines)
                .chain(std::iter::once((&results[1], &machines[1])))
                .collect();
            let batch = simulate_batch(&kernel, &entries, &base, 12);
            assert_eq!(batch.len(), entries.len());
            for ((result, machine), (verdict, mem)) in entries.iter().zip(&batch) {
                let mut scalar_mem = base.clone();
                let scalar = simulate(&kernel, result, machine, &mut scalar_mem, 12);
                assert_eq!(&scalar, verdict);
                assert_eq!(&scalar_mem, mem);
            }
        }
    }

    #[test]
    fn batch_isolates_a_validation_failure() {
        let kernel = compile_kernel(KERNELS[0], &[]).unwrap();
        let wide = ArchSpec::new(8, 4, 256, 2, 4, 1).unwrap();
        let wide_machine = MachineResources::from_spec(&wide);
        let narrow_machine = MachineResources::from_spec(&ArchSpec::baseline());
        // A wide schedule validated against the baseline's resources
        // oversubscribes; the sibling entry with the right machine must
        // be untouched by that failure.
        let result = compile(&kernel, &wide_machine);
        let mut base = MemImage::for_kernel(&kernel);
        for (i, a) in kernel.arrays.iter().enumerate() {
            if !matches!(a.kind, ArrayKind::Local(_)) {
                base.bind(i, (0..256).map(|k| (k * 13 + 5) % 250).collect());
            }
        }
        let entries = [(&result, &narrow_machine), (&result, &wide_machine)];
        let batch = simulate_batch(&kernel, &entries, &base, 8);
        assert!(
            matches!(batch[0].0, Err(SimError::Oversubscribed { .. })),
            "narrow machine accepted a wide schedule"
        );
        assert_eq!(batch[0].1, base, "a failed entry mutated its image");
        let mut mem = base.clone();
        let scalar = simulate(&kernel, &result, &wide_machine, &mut mem, 8);
        assert_eq!(batch[1].0, scalar);
        assert_eq!(batch[1].1, mem);
    }
}
