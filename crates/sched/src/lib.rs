//! # cfp-sched — the retargetable VLIW back end
//!
//! The machine-dependent half of the compiler, corresponding to the
//! paper's "build a version of our compiler that generates good code for
//! that architecture" step:
//!
//! 1. [`loopcode`] flattens a kernel body into schedulable operations,
//!    materializing the address-stream and loop-control overhead;
//! 2. [`ddg`] builds the data-dependence graph (register RAW plus affine
//!    memory disambiguation);
//! 3. [`cluster`] performs BUG-style cluster assignment and inserts the
//!    explicit inter-cluster moves of the paper's template;
//! 4. [`list`] runs a resource-constrained list scheduler (per-cluster
//!    ALU/IMUL slots, non-pipelined memory ports, the single branch
//!    unit);
//! 5. [`regalloc`] measures per-cluster register pressure and detects
//!    spilling — the signal the experiment's unroll sweep stops on;
//! 6. [`mod@simulate`] executes the schedule cycle-accurately and must
//!    reproduce the reference interpreter bit for bit;
//! 7. [`mod@encode`] lowers schedules to bit-level long-instruction words
//!    (with the classic VLIW NOP-compression) and back;
//! 8. [`modulo`] is an ablation scheduler: software pipelining, to
//!    quantify what the paper's loop-barrier discipline costs.
//!
//! [`compile`](compile::compile) glues the pipeline together. The
//! pipeline is also exposed as three cacheable phases —
//! [`prepare`](compile::prepare) (machine-independent),
//! [`compile_core`](compile::compile_core) (depends on the machine's
//! scheduling signature but not its register-file size), and
//! [`finish`](compile::finish) (the capacity verdict) — so a sweep over
//! many machines can share everything two of them compile alike.
//!
//! ```
//! use cfp_frontend::compile_kernel;
//! use cfp_machine::{ArchSpec, MachineResources};
//!
//! let kernel = compile_kernel(
//!     "kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = s[i] * 5 + 7; } }",
//!     &[],
//! ).unwrap();
//! let machine = MachineResources::from_spec(&ArchSpec::baseline());
//! let out = cfp_sched::compile::compile(&kernel, &machine);
//! assert!(out.fits());
//! assert!(u64::from(out.cycles_per_iter()) >= u64::from(out.critical_path));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod compile;
pub mod ddg;
pub mod encode;
pub mod error;
pub mod list;
pub mod loopcode;
pub mod modulo;
pub mod regalloc;
pub mod scratch;
pub mod simulate;

pub use cluster::Assignment;
pub use compile::{
    compile, compile_core, finish, prepare, prepare_traced, spill_penalty_cycles, try_compile,
    try_compile_core, try_compile_core_in, try_compile_core_traced_in, CompileResult, Prepared,
    SchedCore,
};
pub use ddg::{Ddg, Dep, DepKind};
pub use encode::{decode, encode, encode_traced, EncodeError, Program};
pub use error::{Fuel, SchedError};
pub use list::{
    render, schedule, schedule_with, schedule_with_fuel, try_schedule, try_schedule_in, Placement,
    Priority, Schedule,
};
pub use loopcode::{FuClass, LoopCode, OpOrigin, SOp};
pub use modulo::{
    modulo_schedule, omega_deps, rec_mii, res_mii, try_modulo_schedule, try_modulo_schedule_in,
    try_modulo_schedule_traced_in, ModuloSchedule, OmegaDep,
};
pub use regalloc::{allocate, peak_pressure, pressure, AllocError, PhysMap, PressureReport};
pub use scratch::SchedScratch;
pub use simulate::{simulate, simulate_batch, simulate_traced, SimError, SimStats};
