//! Typed failures and step budgets for the back end.
//!
//! The design-space exploration runs this compiler thousands of times on
//! machine descriptions nobody has eyeballed; a pathological candidate
//! must surface as a *value*, not as an abort or a hung worker. Two
//! pieces provide that:
//!
//! * [`SchedError`] — everything the scheduling pipeline can refuse to
//!   do, so callers can quarantine one `(architecture, benchmark)` unit
//!   and keep sweeping;
//! * [`Fuel`] — a step budget threaded through the schedulers. Every
//!   inner-loop step spends fuel; when it runs out the compilation stops
//!   with [`SchedError::FuelExhausted`] instead of monopolizing a worker
//!   thread. [`Fuel::unlimited`] preserves the exact legacy behaviour.

use std::error::Error;
use std::fmt;

/// Why a compilation could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The step budget ran out before a schedule was found.
    FuelExhausted {
        /// The budget the caller granted.
        budget: u64,
    },
    /// The list scheduler exceeded its hard cycle cap — a resource the
    /// code needs is effectively absent from the machine.
    CycleCapExceeded {
        /// The cap that was hit.
        cap: u32,
    },
}

impl SchedError {
    /// Stable one-word token for trace fields and summaries.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            SchedError::FuelExhausted { .. } => "fuel",
            SchedError::CycleCapExceeded { .. } => "cycle_cap",
        }
    }
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::FuelExhausted { budget } => {
                write!(f, "compilation exhausted its fuel budget of {budget} steps")
            }
            SchedError::CycleCapExceeded { cap } => {
                write!(f, "schedule exceeded the {cap}-cycle cap")
            }
        }
    }
}

impl Error for SchedError {}

/// A step budget for one compilation.
///
/// Fuel is deterministic: the schedulers spend it on loop trips, never
/// on wall-clock time, so two runs with the same inputs and budget make
/// identical progress on every platform. A budget of [`Fuel::unlimited`]
/// never exhausts and adds no observable behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    /// Steps left; `None` means unlimited.
    remaining: Option<u64>,
    /// The budget this fuel started from (for error reports).
    budget: u64,
    /// Steps spent so far (counted even when unlimited, so a caller can
    /// price a completed compilation and re-charge it elsewhere — the
    /// compile cache does exactly this to keep budgets deterministic
    /// under memoization).
    spent: u64,
}

impl Fuel {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> Self {
        Fuel {
            remaining: None,
            budget: u64::MAX,
            spent: 0,
        }
    }

    /// A budget of exactly `steps` scheduler steps.
    #[must_use]
    pub fn limited(steps: u64) -> Self {
        Fuel {
            remaining: Some(steps),
            budget: steps,
            spent: 0,
        }
    }

    /// `limited` when `steps` is `Some`, `unlimited` otherwise.
    #[must_use]
    pub fn from_budget(steps: Option<u64>) -> Self {
        steps.map_or_else(Fuel::unlimited, Fuel::limited)
    }

    /// Spend `steps` units of fuel.
    ///
    /// # Errors
    /// Returns [`SchedError::FuelExhausted`] once the budget is gone;
    /// every later call keeps failing, so a scheduler loop cannot limp
    /// past its own abort.
    #[inline]
    pub fn spend(&mut self, steps: u64) -> Result<(), SchedError> {
        match &mut self.remaining {
            None => {
                self.spent = self.spent.saturating_add(steps);
                Ok(())
            }
            Some(left) => {
                if *left < steps {
                    *left = 0;
                    Err(SchedError::FuelExhausted {
                        budget: self.budget,
                    })
                } else {
                    *left -= steps;
                    self.spent = self.spent.saturating_add(steps);
                    Ok(())
                }
            }
        }
    }

    /// Steps left, if this budget is limited.
    #[inline]
    #[must_use]
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }

    /// Steps successfully spent so far (exhausted attempts not counted).
    #[inline]
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_fuel_never_exhausts() {
        let mut f = Fuel::unlimited();
        for _ in 0..1000 {
            f.spend(u64::MAX / 2).expect("unlimited");
        }
        assert_eq!(f.remaining(), None);
        assert_eq!(f.spent(), u64::MAX, "spent saturates, never wraps");
    }

    #[test]
    fn limited_fuel_exhausts_exactly_once_spent() {
        let mut f = Fuel::limited(10);
        f.spend(4).expect("within budget");
        f.spend(6).expect("exactly the budget");
        let err = f.spend(1).expect_err("over budget");
        assert_eq!(err, SchedError::FuelExhausted { budget: 10 });
        assert_eq!(f.spent(), 10, "the failed spend is not counted");
        // Exhaustion is sticky.
        assert!(f.spend(0).is_err() || f.remaining() == Some(0));
        assert!(f.spend(1).is_err());
    }

    #[test]
    fn from_budget_maps_none_to_unlimited() {
        assert_eq!(Fuel::from_budget(None), Fuel::unlimited());
        assert_eq!(Fuel::from_budget(Some(7)), Fuel::limited(7));
    }

    #[test]
    fn errors_render_their_numbers() {
        assert!(SchedError::FuelExhausted { budget: 42 }
            .to_string()
            .contains("42"));
        assert!(SchedError::CycleCapExceeded { cap: 9 }
            .to_string()
            .contains("9"));
    }
}
