//! Register-pressure analysis and spill detection.
//!
//! After scheduling, every value has a cluster and a live interval in
//! cycles. The maximum number of simultaneously-live values in a cluster
//! must fit its register bank; the excess is the *spill pressure*. The
//! experiment's discipline (paper §2.4) is: if an unroll factor spills,
//! reject it and all larger ones; if the kernel spills even without
//! unrolling, the compiler must insert spill traffic and the schedule
//! pays for it (see `compile::spill_penalty_cycles`) — that is the
//! mechanism behind the paper's pathological cases (A at speedup 0.89 on
//! a 16-ALU, 128-register machine).
//!
//! Interval rules (steady state, iterations back to back):
//! * a value defined at cycle `d` with last read at cycle `u` is live on
//!   `[d, u]`; if it is carried out, it is live to the end of the
//!   iteration, and its carried-in twin is separately live from cycle 0 —
//!   counting both models the overlap between a value and its successor;
//! * resident values (loop constants, broadcast at setup) occupy one
//!   register in **every cluster that reads them**, for the whole loop.

use crate::cluster::Assignment;
use crate::list::Schedule;
use crate::scratch::SchedScratch;
use cfp_ir::Vreg;
use cfp_machine::MachineResources;
use std::collections::{HashMap, HashSet};

/// Per-cluster pressure versus capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureReport {
    /// Maximum simultaneous live values per cluster.
    pub peak: Vec<u32>,
    /// Register capacity per cluster.
    pub capacity: Vec<u32>,
}

impl PressureReport {
    /// Total registers short across clusters (0 when everything fits).
    #[must_use]
    pub fn spill_excess(&self) -> u32 {
        self.peak
            .iter()
            .zip(&self.capacity)
            .map(|(&p, &c)| p.saturating_sub(c))
            .sum()
    }

    /// Whether the kernel fits without spilling.
    #[must_use]
    pub fn fits(&self) -> bool {
        self.spill_excess() == 0
    }
}

/// Compute the pressure report for a scheduled iteration.
#[must_use]
pub fn pressure(
    assignment: &Assignment,
    schedule: &Schedule,
    machine: &MachineResources,
) -> PressureReport {
    PressureReport {
        peak: peak_pressure(assignment, schedule, machine.cluster_count()),
        capacity: machine.clusters.iter().map(|cl| cl.regs).collect(),
    }
}

/// Maximum simultaneous live values per cluster.
///
/// This is the capacity-free half of [`pressure`]: the live intervals are
/// fully determined by the assignment and the schedule, so the peaks
/// depend on the machine only through its cluster count — never its
/// register-file size. The design-space exploration exploits this to
/// share one computation across every register configuration of an
/// otherwise-identical architecture.
#[must_use]
pub fn peak_pressure(assignment: &Assignment, schedule: &Schedule, clusters: usize) -> Vec<u32> {
    peak_pressure_in(assignment, schedule, clusters, &mut SchedScratch::new())
}

/// [`peak_pressure`] with working memory from `scratch`: last-use times,
/// resident-reader sets (one bitmask word per 64 clusters), and the
/// interval diff arrays live in reused flat buffers.
#[must_use]
pub fn peak_pressure_in(
    assignment: &Assignment,
    schedule: &Schedule,
    clusters: usize,
    scratch: &mut SchedScratch,
) -> Vec<u32> {
    const NO_USE: u32 = u32::MAX; // cycles are < 2^20, so MAX is free
    let code = &assignment.code;
    let nc = clusters;
    let len = schedule.length as usize;
    let nv = code.vreg_limit as usize;

    let SchedScratch {
        vflags,
        last_use,
        reader_mask,
        diff,
        ..
    } = scratch;

    // Bit 0: resident (broadcast loop constant); bit 1: carried out.
    vflags.clear();
    vflags.resize(nv, 0);
    for v in &code.resident {
        vflags[v.index()] |= 1;
    }
    for &(_, o) in &code.carried {
        vflags[o.index()] |= 2;
    }
    // A carried-in value also occupies its register until the boundary
    // latch overwrites it, but it may be overwritten as soon as its last
    // reader has issued; only the last read matters, so carried-in needs
    // no flag of its own.

    // Last read cycle of every non-resident value; for resident values, a
    // bitmask of the clusters reading them.
    let words = nc.div_ceil(64);
    last_use.clear();
    last_use.resize(nv, NO_USE);
    reader_mask.clear();
    reader_mask.resize(nv * words, 0);
    for (i, op) in code.ops.iter().enumerate() {
        let t = schedule.placements[i].cycle;
        for u in &op.uses {
            if vflags[u.index()] & 1 != 0 {
                let c = schedule.placements[i].cluster as usize;
                reader_mask[u.index() * words + c / 64] |= 1_u64 << (c % 64);
            } else {
                let e = &mut last_use[u.index()];
                *e = if *e == NO_USE { t } else { (*e).max(t) };
            }
        }
    }

    // Interval diff arrays, one `len + 1` run per cluster.
    diff.clear();
    diff.resize(nc * (len + 1), 0);
    let mut add = |c: usize, from: usize, to: usize| {
        let to = to.min(len);
        if from < to {
            diff[c * (len + 1) + from] += 1;
            diff[c * (len + 1) + to] -= 1;
        }
    };

    // Defined values.
    for (i, op) in code.ops.iter().enumerate() {
        let Some(d) = op.def else { continue };
        let c = schedule.placements[i].cluster as usize;
        let start = schedule.placements[i].cycle as usize;
        let end = if vflags[d.index()] & 2 != 0 {
            len
        } else {
            match last_use[d.index()] {
                NO_USE => start + 1,
                u => (u as usize) + 1,
            }
        };
        add(c, start, end.max(start + 1));
    }
    // Live-in values (carried-in, non-resident).
    for &v in &code.live_ins {
        if vflags[v.index()] & 1 != 0 {
            continue;
        }
        let c = assignment.home_of.get(&v).copied().unwrap_or(0) as usize;
        let end = match last_use[v.index()] {
            NO_USE => 1,
            u => (u as usize) + 1,
        };
        add(c, 0, end);
    }
    // Resident values: whole loop, in every reading cluster.
    for v in 0..nv {
        if vflags[v] & 1 == 0 {
            continue;
        }
        for w in 0..words {
            let mut mask = reader_mask[v * words + w];
            while mask != 0 {
                let c = w * 64 + mask.trailing_zeros() as usize;
                add(c, 0, len);
                mask &= mask - 1;
            }
        }
    }

    let mut peak = vec![0_u32; nc];
    for (c, p) in peak.iter_mut().enumerate() {
        let mut cur = 0_i32;
        for d in diff[c * (len + 1)..].iter().take(len) {
            cur += d;
            *p = (*p).max(u32::try_from(cur.max(0)).expect("non-negative"));
        }
    }
    peak
}

/// A physical register assignment: `(vreg, cluster) -> register number`
/// within that cluster's bank. Resident values get one register in every
/// cluster that reads them (they are broadcast at loop setup); carried
/// in/out pairs may hold distinct registers — the iteration-boundary
/// latch is architectural, in the spirit of rotating register files.
#[derive(Debug, Clone, Default)]
pub struct PhysMap {
    map: HashMap<(Vreg, u32), u16>,
}

impl PhysMap {
    /// The physical register of `v` as seen from `cluster`.
    #[must_use]
    pub fn get(&self, v: Vreg, cluster: u32) -> Option<u16> {
        self.map.get(&(v, cluster)).copied()
    }

    /// Number of assignments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no registers were assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Register allocation failure: a cluster ran out of registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// The cluster that overflowed.
    pub cluster: u32,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster {} ran out of physical registers", self.cluster)
    }
}

impl std::error::Error for AllocError {}

/// Linear-scan register allocation over the scheduled live intervals.
///
/// Interval construction matches [`pressure`] exactly, so allocation
/// succeeds if and only if the pressure report fits (up to identical
/// tie conventions).
///
/// # Errors
/// Returns [`AllocError`] naming the first cluster whose bank overflows.
pub fn allocate(
    assignment: &Assignment,
    schedule: &Schedule,
    machine: &MachineResources,
) -> Result<PhysMap, AllocError> {
    let code = &assignment.code;
    let len = schedule.length as usize;
    let resident: HashSet<Vreg> = code.resident.iter().copied().collect();
    let carried_out: HashSet<Vreg> = code.carried.iter().map(|&(_, o)| o).collect();

    // Last read cycle per value, and resident readers per cluster — the
    // same rules as `pressure`.
    let mut last_use: HashMap<Vreg, u32> = HashMap::new();
    let mut resident_readers: HashMap<Vreg, HashSet<u32>> = HashMap::new();
    for (i, op) in code.ops.iter().enumerate() {
        let t = schedule.placements[i].cycle;
        for u in &op.uses {
            if resident.contains(u) {
                resident_readers
                    .entry(*u)
                    .or_default()
                    .insert(schedule.placements[i].cluster);
            } else {
                let e = last_use.entry(*u).or_insert(t);
                *e = (*e).max(t);
            }
        }
    }

    // Intervals per cluster: (start, end, vreg).
    let nc = machine.cluster_count();
    let mut intervals: Vec<Vec<(usize, usize, Vreg)>> = vec![Vec::new(); nc];
    for (i, op) in code.ops.iter().enumerate() {
        let Some(d) = op.def else { continue };
        let c = schedule.placements[i].cluster as usize;
        let start = schedule.placements[i].cycle as usize;
        let end = if carried_out.contains(&d) {
            len
        } else {
            last_use.get(&d).map_or(start + 1, |&u| (u as usize) + 1)
        };
        intervals[c].push((start, end.max(start + 1), d));
    }
    for &v in &code.live_ins {
        if resident.contains(&v) {
            continue;
        }
        let c = assignment.home_of.get(&v).copied().unwrap_or(0) as usize;
        let end = last_use.get(&v).map_or(1, |&u| (u as usize) + 1);
        intervals[c].push((0, end, v));
    }
    for (v, readers) in &resident_readers {
        for &c in readers {
            intervals[c as usize].push((0, len.max(1), *v));
        }
    }

    // Linear scan, per cluster.
    let mut map = HashMap::new();
    for (c, ivs) in intervals.iter_mut().enumerate() {
        ivs.sort_by_key(|&(start, end, v)| (start, end, v));
        let regs = machine.clusters[c].regs as usize;
        let mut free: Vec<u16> = (0..u16::try_from(regs.min(usize::from(u16::MAX))).expect("fits"))
            .rev()
            .collect();
        // Active intervals: (end, phys), kept as a min-heap by end.
        let mut active: std::collections::BinaryHeap<std::cmp::Reverse<(usize, u16)>> =
            std::collections::BinaryHeap::new();
        for &(start, end, v) in ivs.iter() {
            while let Some(&std::cmp::Reverse((e, phys))) = active.peek() {
                if e <= start {
                    active.pop();
                    free.push(phys);
                } else {
                    break;
                }
            }
            let Some(phys) = free.pop() else {
                return Err(AllocError {
                    cluster: u32::try_from(c).expect("small"),
                });
            };
            map.insert((v, u32::try_from(c).expect("small")), phys);
            active.push(std::cmp::Reverse((end, phys)));
        }
    }
    Ok(PhysMap { map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::assign;
    use crate::ddg::Ddg;
    use crate::list;
    use crate::loopcode::LoopCode;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn report(src: &str, spec: &ArchSpec) -> PressureReport {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let code = LoopCode::build(&k, &m);
        let pre = Ddg::build(&code);
        let a = assign(&code, &pre, &m);
        let ddg = Ddg::build(&a.code);
        let s = list::schedule(&a, &ddg, &m);
        pressure(&a, &s, &m)
    }

    #[test]
    fn small_kernel_fits_the_baseline() {
        let r = report(
            "kernel k(in u8 s[], out u8 d[]) { loop i { d[i] = u8(s[i] + 1); } }",
            &ArchSpec::baseline(),
        );
        assert!(r.fits(), "{r:?}");
        assert!(r.peak[0] >= 4, "at least pointers + induction: {r:?}");
    }

    #[test]
    fn wide_window_overflows_a_tiny_bank() {
        // 24 concurrent products on a machine with 16 registers.
        let src = "kernel w(in u8 s[], out i32 d[]) {
            loop i {
                var acc = 0;
                for t in 0..24 { acc = acc + s[24*i + t] * (2*t + 3); }
                d[i] = acc;
            }
        }";
        let tiny = report(src, &ArchSpec::new(16, 8, 16, 4, 4, 1).unwrap());
        assert!(!tiny.fits(), "peak {:?}", tiny.peak);
        let big = report(src, &ArchSpec::new(16, 8, 512, 4, 4, 1).unwrap());
        assert!(big.fits(), "peak {:?}", big.peak);
    }

    #[test]
    fn clustering_splits_pressure_and_capacity() {
        let src = "kernel w(in u8 s[], out i32 d[]) {
            loop i {
                var a = s[4*i] * 3;
                var b = s[4*i+1] * 5;
                var c = s[4*i+2] * 7;
                var e = s[4*i+3] * 9;
                d[i] = (a + b) + (c + e);
            }
        }";
        let r = report(src, &ArchSpec::new(8, 4, 256, 2, 4, 4).unwrap());
        assert_eq!(r.capacity, vec![64, 64, 64, 64]);
        assert!(r.fits());
    }

    #[test]
    fn resident_constants_count_everywhere_they_are_read() {
        let src = "kernel k(in l1 i16 t[], in u8 s[], out i32 d[]) {
            var c0 = t[0];
            loop i { d[i] = s[i] * c0 + (s[i+1] * c0); }
        }";
        let r1 = report(src, &ArchSpec::new(2, 1, 64, 1, 4, 1).unwrap());
        assert!(r1.fits());
        assert!(r1.peak[0] >= 5);
    }
}
