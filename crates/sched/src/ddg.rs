//! Data-dependence graph over a [`LoopCode`].
//!
//! Register dependences are pure RAW (the IR is single-assignment within
//! an iteration). Memory dependences use the affine access functions:
//! two references to the *same array* conflict within an iteration only
//! if their access functions can name the same element at the same
//! iteration index — for equal strides that means equal offsets; for
//! unequal strides or any dynamic index we are conservative. Arrays never
//! alias each other. Cross-iteration memory ordering is guaranteed by the
//! loop barrier (iterations do not overlap in the non-pipelined schedule).

use crate::loopcode::LoopCode;
use cfp_ir::{Inst, Vreg};
use std::collections::HashMap;

/// Why an edge exists (affects its latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Register read-after-write: consumer waits for the full latency.
    RegRaw,
    /// Memory read-after-write (same element): load waits for the store
    /// to complete.
    MemRaw,
    /// Memory write-after-read: the store may issue in the cycle after
    /// the load samples memory.
    MemWar,
    /// Memory write-after-write (same element): order preserved.
    MemWaw,
}

/// One dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Producer op index.
    pub from: usize,
    /// Consumer op index.
    pub to: usize,
    /// Minimum issue-cycle separation: `issue(to) ≥ issue(from) + lat`.
    pub lat: u32,
    /// Classification.
    pub kind: DepKind,
}

/// The dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ddg {
    /// Edges grouped by consumer.
    pub preds: Vec<Vec<Dep>>,
    /// Edges grouped by producer.
    pub succs: Vec<Vec<Dep>>,
    /// Critical-path height of each op (its latency plus the longest
    /// path below it); the list scheduler's priority.
    pub height: Vec<u32>,
}

impl Ddg {
    /// Build the graph.
    #[must_use]
    pub fn build(code: &LoopCode) -> Self {
        let n = code.ops.len();
        let mut preds: Vec<Vec<Dep>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<Dep>> = vec![Vec::new(); n];
        let push = |d: Dep, preds: &mut Vec<Vec<Dep>>, succs: &mut Vec<Vec<Dep>>| {
            preds[d.to].push(d);
            succs[d.from].push(d);
        };

        // Register RAW edges.
        let mut def_of: HashMap<Vreg, usize> = HashMap::new();
        for (i, op) in code.ops.iter().enumerate() {
            if let Some(d) = op.def {
                def_of.insert(d, i);
            }
        }
        for (i, op) in code.ops.iter().enumerate() {
            for u in &op.uses {
                if let Some(&p) = def_of.get(u) {
                    push(
                        Dep {
                            from: p,
                            to: i,
                            lat: code.ops[p].latency,
                            kind: DepKind::RegRaw,
                        },
                        &mut preds,
                        &mut succs,
                    );
                }
            }
        }

        // Memory ordering edges, pairwise per array, program order.
        let mems = code.mem_ops();
        for (ai, &a) in mems.iter().enumerate() {
            for &b in &mems[ai + 1..] {
                let (ia, ib) = (
                    code.ops[a].inst.expect("mem ops are body ops"),
                    code.ops[b].inst.expect("mem ops are body ops"),
                );
                let Some(kind) = mem_dep_kind(&ia, &ib) else {
                    continue;
                };
                let lat = match kind {
                    DepKind::MemRaw => code.ops[a].latency,
                    DepKind::MemWar => 1,
                    DepKind::MemWaw => 1,
                    DepKind::RegRaw => unreachable!(),
                };
                push(
                    Dep {
                        from: a,
                        to: b,
                        lat,
                        kind,
                    },
                    &mut preds,
                    &mut succs,
                );
            }
        }

        // Critical-path heights (the graph is acyclic: register RAW edges
        // follow single-assignment order and memory edges follow program
        // order).
        let mut height = vec![0_u32; n];
        let order = topo_order(n, &succs);
        for &i in order.iter().rev() {
            let below = succs[i]
                .iter()
                .map(|d| d.lat + height[d.to])
                .max()
                .unwrap_or(0);
            // Edge latencies already include the producer's latency, so a
            // node's height is the longest chain hanging below it — or its
            // own completion time if it is a sink.
            height[i] = code.ops[i].latency.max(1).max(below);
        }

        Ddg {
            preds,
            succs,
            height,
        }
    }

    /// The length in cycles of the longest dependence chain — a lower
    /// bound on any schedule, regardless of resources.
    #[must_use]
    pub fn critical_path(&self) -> u32 {
        self.height.iter().copied().max().unwrap_or(0)
    }
}

fn topo_order(n: usize, succs: &[Vec<Dep>]) -> Vec<usize> {
    let mut indeg = vec![0_usize; n];
    for edges in succs {
        for d in edges {
            indeg[d.to] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = stack.pop() {
        order.push(i);
        for d in &succs[i] {
            indeg[d.to] -= 1;
            if indeg[d.to] == 0 {
                stack.push(d.to);
            }
        }
    }
    assert_eq!(order.len(), n, "dependence graph must be acyclic");
    order
}

/// Dependence between two memory ops in program order (`a` before `b`),
/// or `None` when they provably never touch the same element in the same
/// iteration.
fn mem_dep_kind(a: &Inst, b: &Inst) -> Option<DepKind> {
    let (ma, mb) = (a.mem()?, b.mem()?);
    if ma.array != mb.array {
        return None;
    }
    let kind = match (a.is_store(), b.is_store()) {
        (false, false) => return None,
        (true, false) => DepKind::MemRaw,
        (false, true) => DepKind::MemWar,
        (true, true) => DepKind::MemWaw,
    };
    let may_conflict = if !ma.is_affine() || !mb.is_affine() {
        true
    } else if ma.coeff == mb.coeff {
        ma.offset == mb.offset
    } else {
        // Different strides on the same array: `c1·i + o1 = c2·i + o2`
        // has a solution for some iteration; be conservative.
        true
    };
    may_conflict.then_some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopcode::{FuClass, LoopCode};
    use cfp_frontend::compile_kernel;
    use cfp_machine::{ArchSpec, MachineResources};

    fn code_for(src: &str) -> LoopCode {
        let k = compile_kernel(src, &[]).unwrap();
        LoopCode::build(&k, &MachineResources::from_spec(&ArchSpec::baseline()))
    }

    #[test]
    fn raw_edges_carry_producer_latency() {
        let lc = code_for("kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = s[i] * 3; } }");
        let g = Ddg::build(&lc);
        // Find the multiply; its predecessor is the load (latency 8 on the
        // baseline's L2).
        let mul = lc.ops.iter().position(|o| o.class == FuClass::Mul).unwrap();
        let raw: Vec<_> = g.preds[mul]
            .iter()
            .filter(|d| d.kind == DepKind::RegRaw)
            .collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].lat, 8);
    }

    #[test]
    fn independent_elements_have_no_memory_edges() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[2*i];
                    b[2*i + 1] = x;
                    d[i] = x;
                }
            }",
        );
        let g = Ddg::build(&lc);
        let mem_edges: usize = g
            .preds
            .iter()
            .flatten()
            .filter(|d| d.kind != DepKind::RegRaw)
            .count();
        assert_eq!(mem_edges, 0, "offsets 0 and 1 never collide");
    }

    #[test]
    fn same_element_store_then_load_is_raw() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    b[i] = 7;
                    d[i] = b[i];
                }
            }",
        );
        let g = Ddg::build(&lc);
        let raw = g
            .preds
            .iter()
            .flatten()
            .any(|d| d.kind == DepKind::MemRaw && d.lat == 8);
        assert!(raw);
    }

    #[test]
    fn load_then_store_same_element_is_war() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[i];
                    b[i] = x + 1;
                    d[i] = x;
                }
            }",
        );
        let g = Ddg::build(&lc);
        assert!(g
            .preds
            .iter()
            .flatten()
            .any(|d| d.kind == DepKind::MemWar && d.lat == 1));
    }

    #[test]
    fn dynamic_index_is_conservative() {
        let lc = code_for(
            "kernel k(in i32 idx[], inout i32 b[], out i32 d[]) {
                loop i {
                    b[idx[i] & 3] = i32(1);
                    d[i] = b[0];
                }
            }",
        );
        let g = Ddg::build(&lc);
        assert!(g.preds.iter().flatten().any(|d| d.kind == DepKind::MemRaw));
    }

    #[test]
    fn critical_path_is_a_lower_bound() {
        let lc =
            code_for("kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = (s[i] * 3 + 1) * 5; } }");
        let g = Ddg::build(&lc);
        // ld(8) + mul(2) + add(1) + mul(2) + st issues → ≥ 13.
        assert!(g.critical_path() >= 13, "{}", g.critical_path());
    }
}
