//! Data-dependence graph over a [`LoopCode`].
//!
//! Register dependences are pure RAW (the IR is single-assignment within
//! an iteration). Memory dependences use the affine access functions:
//! two references to the *same array* conflict within an iteration only
//! if their access functions can name the same element at the same
//! iteration index — for equal strides that means equal offsets; for
//! unequal strides or any dynamic index we are conservative. Arrays never
//! alias each other. Cross-iteration memory ordering is guaranteed by the
//! loop barrier (iterations do not overlap in the non-pipelined schedule).
//!
//! The graph is stored in compressed-sparse-row (CSR) form: one flat edge
//! array grouped by consumer, one grouped by producer, each indexed by an
//! `n + 1`-entry row-offset table. The exploration builds a graph once
//! per cached plan and then reads it from every architecture of the
//! sweep, so the layout is optimized for shared read-only traversal: a
//! node's predecessors (or successors) are one contiguous slice, and the
//! whole structure is four allocations regardless of edge count. Within
//! each group, edges appear in the exact order the old `Vec<Vec<Dep>>`
//! representation pushed them (the grouping sort is stable), so every
//! downstream traversal sees the same sequence it always has.

use crate::loopcode::LoopCode;
use crate::scratch::SchedScratch;
use cfp_ir::Inst;

/// Why an edge exists (affects its latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Register read-after-write: consumer waits for the full latency.
    RegRaw,
    /// Memory read-after-write (same element): load waits for the store
    /// to complete.
    MemRaw,
    /// Memory write-after-read: the store may issue in the cycle after
    /// the load samples memory.
    MemWar,
    /// Memory write-after-write (same element): order preserved.
    MemWaw,
}

/// One dependence edge. Indices are `u32` so an edge packs into twelve
/// bytes plus the kind — the graphs are read far more than built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Producer op index.
    pub from: u32,
    /// Consumer op index.
    pub to: u32,
    /// Minimum issue-cycle separation: `issue(to) ≥ issue(from) + lat`.
    pub lat: u32,
    /// Classification.
    pub kind: DepKind,
}

/// The dependence graph, in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ddg {
    /// All edges, grouped by consumer (`to`).
    pred_edges: Vec<Dep>,
    /// `pred_edges[pred_row[i]..pred_row[i + 1]]` are op `i`'s preds.
    pred_row: Vec<u32>,
    /// All edges, grouped by producer (`from`).
    succ_edges: Vec<Dep>,
    /// `succ_edges[succ_row[i]..succ_row[i + 1]]` are op `i`'s succs.
    succ_row: Vec<u32>,
    /// Critical-path height of each op (its latency plus the longest
    /// path below it); the list scheduler's priority.
    pub height: Vec<u32>,
}

impl Ddg {
    /// Build the graph.
    #[must_use]
    pub fn build(code: &LoopCode) -> Self {
        Self::build_in(code, &mut SchedScratch::new())
    }

    /// [`Ddg::build`] using `scratch` for every intermediate buffer, so a
    /// sweep that builds many graphs allocates only the graphs themselves.
    #[must_use]
    pub fn build_in(code: &LoopCode, scratch: &mut SchedScratch) -> Self {
        let n = code.ops.len();

        // Collect every edge, in discovery order (register RAW first,
        // then pairwise memory edges in program order) — the same order
        // the nested-Vec representation pushed them.
        let edges = &mut scratch.edge_buf;
        edges.clear();

        // Register RAW edges. `def_of` is a vreg-indexed table (the IR is
        // single-assignment, so last-write-wins insertion is moot).
        let def_of = &mut scratch.def_of;
        def_of.clear();
        def_of.resize(code.vreg_limit as usize, u32::MAX);
        for (i, op) in code.ops.iter().enumerate() {
            if let Some(d) = op.def {
                def_of[d.index()] = u32::try_from(i).expect("op count fits u32");
            }
        }
        for (i, op) in code.ops.iter().enumerate() {
            for u in &op.uses {
                let p = def_of[u.index()];
                if p != u32::MAX {
                    edges.push(Dep {
                        from: p,
                        to: u32::try_from(i).expect("op count fits u32"),
                        lat: code.ops[p as usize].latency,
                        kind: DepKind::RegRaw,
                    });
                }
            }
        }

        // Memory ordering edges, pairwise per array, program order.
        let mems = &mut scratch.mems_tmp;
        mems.clear();
        for (i, op) in code.ops.iter().enumerate() {
            if op.class.is_mem() {
                mems.push(u32::try_from(i).expect("op count fits u32"));
            }
        }
        for (ai, &a) in mems.iter().enumerate() {
            for &b in &mems[ai + 1..] {
                let (ia, ib) = (
                    code.ops[a as usize].inst.expect("mem ops are body ops"),
                    code.ops[b as usize].inst.expect("mem ops are body ops"),
                );
                let Some(kind) = mem_dep_kind(&ia, &ib) else {
                    continue;
                };
                let lat = match kind {
                    DepKind::MemRaw => code.ops[a as usize].latency,
                    DepKind::MemWar | DepKind::MemWaw => 1,
                    DepKind::RegRaw => unreachable!(),
                };
                edges.push(Dep {
                    from: a,
                    to: b,
                    lat,
                    kind,
                });
            }
        }

        let latency_of = |i: usize| code.ops[i].latency;
        assemble(
            n,
            &scratch.edge_buf,
            latency_of,
            &mut scratch.row_tmp,
            (&mut scratch.indeg, &mut scratch.topo),
        )
    }

    /// Rebuild a graph from an explicit edge list over `latencies.len()`
    /// ops (op `i` has result latency `latencies[i]`). Edges keep their
    /// input order within each CSR group. This is [`Ddg::build`] minus
    /// the dependence analysis — the round-trip partner of
    /// [`Ddg::edges`], used by the equivalence tests.
    ///
    /// # Panics
    /// Panics if the edge list contains a cycle or an out-of-range index.
    #[must_use]
    pub fn from_edges(latencies: &[u32], edges: &[Dep]) -> Self {
        let mut scratch = SchedScratch::new();
        assemble(
            latencies.len(),
            edges,
            |i| latencies[i],
            &mut scratch.row_tmp,
            (&mut scratch.indeg, &mut scratch.topo),
        )
    }

    /// Number of ops the graph spans.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.pred_row.len() - 1
    }

    /// Dependences into op `i` (its predecessors), in build order.
    #[must_use]
    pub fn preds(&self, i: usize) -> &[Dep] {
        &self.pred_edges[self.pred_row[i] as usize..self.pred_row[i + 1] as usize]
    }

    /// Dependences out of op `i` (its successors), in build order.
    #[must_use]
    pub fn succs(&self, i: usize) -> &[Dep] {
        &self.succ_edges[self.succ_row[i] as usize..self.succ_row[i + 1] as usize]
    }

    /// Number of predecessors of op `i`.
    #[must_use]
    pub fn pred_count(&self, i: usize) -> u32 {
        self.pred_row[i + 1] - self.pred_row[i]
    }

    /// Every edge, grouped by consumer — the order the old nested-`Vec`
    /// representation yielded from `preds.iter().flatten()`.
    #[must_use]
    pub fn edges(&self) -> &[Dep] {
        &self.pred_edges
    }

    /// The length in cycles of the longest dependence chain — a lower
    /// bound on any schedule, regardless of resources.
    #[must_use]
    pub fn critical_path(&self) -> u32 {
        self.height.iter().copied().max().unwrap_or(0)
    }
}

/// Group `edges` into the two CSR views and compute heights. The
/// grouping is a stable counting sort, so edges sharing a consumer (or
/// producer) keep their input order.
fn assemble(
    n: usize,
    edges: &[Dep],
    latency_of: impl Fn(usize) -> u32,
    row_tmp: &mut Vec<u32>,
    (indeg, topo): (&mut Vec<u32>, &mut Vec<u32>),
) -> Ddg {
    let m = edges.len();
    let filler = Dep {
        from: 0,
        to: 0,
        lat: 0,
        kind: DepKind::RegRaw,
    };

    let group = |key: fn(&Dep) -> u32, row_tmp: &mut Vec<u32>| -> (Vec<Dep>, Vec<u32>) {
        let mut row = vec![0_u32; n + 1];
        for e in edges {
            row[key(e) as usize + 1] += 1;
        }
        for i in 0..n {
            row[i + 1] += row[i];
        }
        // Scatter in input order through a cursor copy of the offsets —
        // this is what keeps each group stable.
        row_tmp.clear();
        row_tmp.extend_from_slice(&row[..n]);
        let mut grouped = vec![filler; m];
        for e in edges {
            let k = key(e) as usize;
            grouped[row_tmp[k] as usize] = *e;
            row_tmp[k] += 1;
        }
        (grouped, row)
    };

    let (pred_edges, pred_row) = group(|e| e.to, row_tmp);
    let (succ_edges, succ_row) = group(|e| e.from, row_tmp);

    // Critical-path heights over a reverse topological order (the graph
    // is acyclic: register RAW edges follow single-assignment order and
    // memory edges follow program order).
    indeg.clear();
    indeg.reserve(n);
    for i in 0..n {
        indeg.push(pred_row[i + 1] - pred_row[i]);
    }
    // `row_tmp` is free again after the grouping; it serves as the stack.
    row_tmp.clear();
    row_tmp.extend((0..n).filter(|&i| indeg[i] == 0).map(|i| i as u32));
    topo.clear();
    while let Some(i) = row_tmp.pop() {
        topo.push(i);
        for e in &succ_edges[succ_row[i as usize] as usize..succ_row[i as usize + 1] as usize] {
            indeg[e.to as usize] -= 1;
            if indeg[e.to as usize] == 0 {
                row_tmp.push(e.to);
            }
        }
    }
    assert_eq!(topo.len(), n, "dependence graph must be acyclic");

    let mut height = vec![0_u32; n];
    for &i in topo.iter().rev() {
        let i = i as usize;
        let below = succ_edges[succ_row[i] as usize..succ_row[i + 1] as usize]
            .iter()
            .map(|d| d.lat + height[d.to as usize])
            .max()
            .unwrap_or(0);
        // Edge latencies already include the producer's latency, so a
        // node's height is the longest chain hanging below it — or its
        // own completion time if it is a sink.
        height[i] = latency_of(i).max(1).max(below);
    }

    Ddg {
        pred_edges,
        pred_row,
        succ_edges,
        succ_row,
        height,
    }
}

/// Dependence between two memory ops in program order (`a` before `b`),
/// or `None` when they provably never touch the same element in the same
/// iteration.
fn mem_dep_kind(a: &Inst, b: &Inst) -> Option<DepKind> {
    let (ma, mb) = (a.mem()?, b.mem()?);
    if ma.array != mb.array {
        return None;
    }
    let kind = match (a.is_store(), b.is_store()) {
        (false, false) => return None,
        (true, false) => DepKind::MemRaw,
        (false, true) => DepKind::MemWar,
        (true, true) => DepKind::MemWaw,
    };
    let may_conflict = if !ma.is_affine() || !mb.is_affine() {
        true
    } else if ma.coeff == mb.coeff {
        ma.offset == mb.offset
    } else {
        // Different strides on the same array: `c1·i + o1 = c2·i + o2`
        // has a solution for some iteration; be conservative.
        true
    };
    may_conflict.then_some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopcode::{FuClass, LoopCode};
    use cfp_frontend::compile_kernel;
    use cfp_machine::{ArchSpec, MachineResources};

    fn code_for(src: &str) -> LoopCode {
        let k = compile_kernel(src, &[]).unwrap();
        LoopCode::build(&k, &MachineResources::from_spec(&ArchSpec::baseline()))
    }

    #[test]
    fn raw_edges_carry_producer_latency() {
        let lc = code_for("kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = s[i] * 3; } }");
        let g = Ddg::build(&lc);
        // Find the multiply; its predecessor is the load (latency 8 on the
        // baseline's L2).
        let mul = lc.ops.iter().position(|o| o.class == FuClass::Mul).unwrap();
        let raw: Vec<_> = g
            .preds(mul)
            .iter()
            .filter(|d| d.kind == DepKind::RegRaw)
            .collect();
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].lat, 8);
    }

    #[test]
    fn independent_elements_have_no_memory_edges() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[2*i];
                    b[2*i + 1] = x;
                    d[i] = x;
                }
            }",
        );
        let g = Ddg::build(&lc);
        let mem_edges = g
            .edges()
            .iter()
            .filter(|d| d.kind != DepKind::RegRaw)
            .count();
        assert_eq!(mem_edges, 0, "offsets 0 and 1 never collide");
    }

    #[test]
    fn same_element_store_then_load_is_raw() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    b[i] = 7;
                    d[i] = b[i];
                }
            }",
        );
        let g = Ddg::build(&lc);
        let raw = g
            .edges()
            .iter()
            .any(|d| d.kind == DepKind::MemRaw && d.lat == 8);
        assert!(raw);
    }

    #[test]
    fn load_then_store_same_element_is_war() {
        let lc = code_for(
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[i];
                    b[i] = x + 1;
                    d[i] = x;
                }
            }",
        );
        let g = Ddg::build(&lc);
        assert!(g
            .edges()
            .iter()
            .any(|d| d.kind == DepKind::MemWar && d.lat == 1));
    }

    #[test]
    fn dynamic_index_is_conservative() {
        let lc = code_for(
            "kernel k(in i32 idx[], inout i32 b[], out i32 d[]) {
                loop i {
                    b[idx[i] & 3] = i32(1);
                    d[i] = b[0];
                }
            }",
        );
        let g = Ddg::build(&lc);
        assert!(g.edges().iter().any(|d| d.kind == DepKind::MemRaw));
    }

    #[test]
    fn critical_path_is_a_lower_bound() {
        let lc =
            code_for("kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = (s[i] * 3 + 1) * 5; } }");
        let g = Ddg::build(&lc);
        // ld(8) + mul(2) + add(1) + mul(2) + st issues → ≥ 13.
        assert!(g.critical_path() >= 13, "{}", g.critical_path());
    }

    #[test]
    fn csr_round_trips_through_its_edge_list() {
        let lc = code_for(
            "kernel k(in u8 s[], inout i32 b[], out i32 d[]) {
                loop i {
                    var x = b[i];
                    b[i] = x + s[i];
                    d[i] = x * 3;
                }
            }",
        );
        let g = Ddg::build(&lc);
        let lats: Vec<u32> = lc.ops.iter().map(|o| o.latency).collect();
        let rebuilt = Ddg::from_edges(&lats, g.edges());
        // The consumer-grouped view and the heights round-trip exactly.
        assert_eq!(rebuilt.edges(), g.edges());
        assert_eq!(rebuilt.height, g.height);
        for i in 0..g.op_count() {
            assert_eq!(rebuilt.preds(i), g.preds(i), "op {i}");
        }
        // The producer-grouped views agree as multisets; within a group
        // the rebuilt order may differ (input order was consumer-grouped)
        // — no consumer of `succs` is order-sensitive.
        let key = |d: &Dep| (d.from, d.to, d.lat);
        for view in [&g, &rebuilt] {
            let mut by_succ: Vec<Dep> = (0..view.op_count())
                .flat_map(|i| view.succs(i))
                .copied()
                .collect();
            let mut by_pred: Vec<Dep> = view.edges().to_vec();
            by_succ.sort_unstable_by_key(key);
            by_pred.sort_unstable_by_key(key);
            assert_eq!(by_succ, by_pred);
        }
    }

    #[test]
    fn scratch_reuse_builds_identical_graphs() {
        let sources = [
            "kernel k(in u8 s[], out i32 d[]) { loop i { d[i] = s[i] * 3; } }",
            "kernel k(inout i32 b[], out i32 d[]) {
                loop i { b[i] = 7; d[i] = b[i]; }
            }",
        ];
        let mut scratch = SchedScratch::new();
        for src in sources {
            let lc = code_for(src);
            assert_eq!(Ddg::build_in(&lc, &mut scratch), Ddg::build(&lc), "{src}");
        }
    }
}
