//! Lowering a kernel body to schedulable operations.
//!
//! The IR keeps memory access functions symbolic (`coeff·i + offset`),
//! which is what a machine with register+offset addressing and per-stream
//! address registers executes. The issue slots for maintaining those
//! address registers are still real, so this stage materializes them as
//! explicit operations:
//!
//! * one *pointer bump* add per array stream (an array the body accesses
//!   with `coeff != 0`);
//! * the induction-variable add, the loop-bound compare, and the
//!   loop-closing branch (which may only issue on cluster 0's branch
//!   unit).
//!
//! These overhead ops participate in scheduling, cluster assignment, and
//! register pressure exactly like body ops.

use cfp_ir::{ArrayId, Inst, Kernel, MemSpace, Vreg};
use cfp_machine::{MachineResources, MemLevel};

/// Which machine-description op class an operation belongs to. The
/// scheduler classifies IR here (the machine crate never sees IR);
/// everything the class *implies* — latency, pipelining, which unit an
/// issue occupies — is read from the machine description
/// ([`cfp_machine::Mdes`]), never hardcoded in this crate.
pub use cfp_machine::OpClass as FuClass;

/// Where a schedulable op came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOrigin {
    /// `body[index]` of the kernel.
    Body(usize),
    /// An inter-cluster copy inserted by cluster assignment.
    Move {
        /// The value being copied.
        src: Vreg,
        /// Destination cluster.
        to: u32,
    },
    /// Address-register bump for one array stream.
    StreamBump(ArrayId),
    /// Induction-variable add.
    Induction,
    /// Loop-bound compare.
    LoopTest,
    /// Loop-closing branch.
    LoopBranch,
}

/// One schedulable operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SOp {
    /// Provenance.
    pub origin: OpOrigin,
    /// The IR instruction, for body ops (used by the schedule simulator).
    pub inst: Option<Inst>,
    /// Functional-unit requirement.
    pub class: FuClass,
    /// Result latency in cycles.
    pub latency: u32,
    /// Defined register, if any.
    pub def: Option<Vreg>,
    /// Registers read.
    pub uses: Vec<Vreg>,
}

/// The flattened, schedulable form of one loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopCode {
    /// All operations (body order first, then overhead ops).
    pub ops: Vec<SOp>,
    /// Values live into each iteration (carried inputs, resident preamble
    /// values, stream pointers, induction state, loop bound).
    pub live_ins: Vec<Vreg>,
    /// The subset of live-ins that stay in a register for the whole loop
    /// (preamble values and the loop bound). Resident values are
    /// broadcast to every cluster that reads them at loop setup, so
    /// cross-cluster reads of them need no per-iteration move — but they
    /// occupy a register in *each* such cluster.
    pub resident: Vec<Vreg>,
    /// Carried pairs `(in, out)`: at the iteration boundary the value of
    /// `out` becomes `in`. Includes the kernel's carried scalars plus the
    /// synthetic pointer/induction chains.
    pub carried: Vec<(Vreg, Vreg)>,
    /// One past the highest vreg number in use.
    pub vreg_limit: u32,
}

impl LoopCode {
    /// Build the schedulable form of `kernel`'s body for `machine`.
    #[must_use]
    pub fn build(kernel: &Kernel, machine: &MachineResources) -> Self {
        let mut next = kernel.vreg_count();
        let mut fresh = || {
            let v = Vreg(next);
            next += 1;
            v
        };

        let mut ops: Vec<SOp> = Vec::with_capacity(kernel.body.len() + 8);
        for (i, inst) in kernel.body.iter().enumerate() {
            let class = class_of(inst, kernel);
            ops.push(SOp {
                origin: OpOrigin::Body(i),
                inst: Some(*inst),
                class,
                latency: machine.latency(class),
                def: inst.def(),
                uses: inst.uses(),
            });
        }

        let mut carried: Vec<(Vreg, Vreg)> =
            kernel.carried.iter().map(|c| (c.input, c.output)).collect();
        let mut live_ins = kernel.body_live_ins();

        // One pointer bump per streamed array.
        let mut streamed: Vec<ArrayId> = kernel
            .body
            .iter()
            .filter_map(|i| i.mem())
            .filter(|m| m.coeff != 0)
            .map(|m| m.array)
            .collect();
        streamed.sort_unstable();
        streamed.dedup();
        for array in streamed {
            let cur = fresh();
            let nxt = fresh();
            ops.push(SOp {
                origin: OpOrigin::StreamBump(array),
                inst: None,
                class: FuClass::Alu,
                latency: machine.latency(FuClass::Alu),
                def: Some(nxt),
                uses: vec![cur],
            });
            carried.push((cur, nxt));
            live_ins.push(cur);
        }

        // Induction variable, loop test, loop branch.
        let i_cur = fresh();
        let i_nxt = fresh();
        let bound = fresh();
        let test = fresh();
        ops.push(SOp {
            origin: OpOrigin::Induction,
            inst: None,
            class: FuClass::Alu,
            latency: machine.latency(FuClass::Alu),
            def: Some(i_nxt),
            uses: vec![i_cur],
        });
        ops.push(SOp {
            origin: OpOrigin::LoopTest,
            inst: None,
            class: FuClass::Alu,
            latency: machine.latency(FuClass::Alu),
            def: Some(test),
            uses: vec![i_nxt, bound],
        });
        ops.push(SOp {
            origin: OpOrigin::LoopBranch,
            inst: None,
            class: FuClass::Branch,
            latency: machine.latency(FuClass::Branch),
            def: None,
            uses: vec![test],
        });
        carried.push((i_cur, i_nxt));
        live_ins.push(i_cur);
        live_ins.push(bound);

        // Resident values: preamble-defined live-ins plus the loop bound.
        let preamble_defs: std::collections::HashSet<Vreg> =
            kernel.preamble.iter().filter_map(Inst::def).collect();
        let mut resident: Vec<Vreg> = live_ins
            .iter()
            .copied()
            .filter(|v| preamble_defs.contains(v))
            .collect();
        resident.push(bound);

        LoopCode {
            ops,
            live_ins,
            resident,
            carried,
            vreg_limit: next,
        }
    }

    /// Indices of the ops that are memory accesses.
    #[must_use]
    pub fn mem_ops(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.class.is_mem())
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the loop branch op.
    ///
    /// # Panics
    /// Panics if the loop code was not built by [`LoopCode::build`].
    #[must_use]
    pub fn branch_index(&self) -> usize {
        self.ops
            .iter()
            .position(|o| o.origin == OpOrigin::LoopBranch)
            .expect("loop code always carries its branch")
    }
}

fn class_of(inst: &Inst, kernel: &Kernel) -> FuClass {
    if inst.needs_mul_unit() {
        return FuClass::Mul;
    }
    if let Some(m) = inst.mem() {
        return level_of(kernel.array(m.array).space).op_class();
    }
    FuClass::Alu
}

/// Map the IR memory space onto the machine model's level.
#[must_use]
pub fn level_of(space: MemSpace) -> MemLevel {
    match space {
        MemSpace::L1 => MemLevel::L1,
        MemSpace::L2 => MemLevel::L2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn machine() -> MachineResources {
        MachineResources::from_spec(&ArchSpec::baseline())
    }

    fn sample() -> Kernel {
        compile_kernel(
            "kernel s(in u8 src[], in l1 i16 tbl[], out i32 dst[]) {
                var c = tbl[0];
                var acc = 0;
                loop i {
                    acc = acc + src[i] * c;
                    dst[i] = acc;
                }
            }",
            &[],
        )
        .unwrap()
    }

    #[test]
    fn overhead_ops_are_materialized() {
        let k = sample();
        let lc = LoopCode::build(&k, &machine());
        // Body ops + 2 stream bumps (src, dst) + induction + test + branch.
        assert_eq!(lc.ops.len(), k.body.len() + 5);
        let bumps = lc
            .ops
            .iter()
            .filter(|o| matches!(o.origin, OpOrigin::StreamBump(_)))
            .count();
        assert_eq!(bumps, 2);
        assert_eq!(lc.ops[lc.branch_index()].class, FuClass::Branch);
    }

    #[test]
    fn classes_and_latencies_follow_the_machine() {
        let k = sample();
        let spec = ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap();
        let lc = LoopCode::build(&k, &MachineResources::from_spec(&spec));
        let classes: Vec<FuClass> = lc.ops.iter().map(|o| o.class).collect();
        assert!(classes.contains(&FuClass::Mul));
        assert!(classes.contains(&FuClass::MemL2));
        for op in &lc.ops {
            match op.class {
                FuClass::Mul => assert_eq!(op.latency, 2),
                FuClass::MemL2 => assert_eq!(op.latency, 4),
                FuClass::MemL1 => assert_eq!(op.latency, 3),
                _ => assert_eq!(op.latency, 1),
            }
        }
    }

    #[test]
    fn carried_chains_cover_pointers_and_induction() {
        let k = sample();
        let lc = LoopCode::build(&k, &machine());
        // acc + 2 pointers + induction.
        assert_eq!(lc.carried.len(), 4);
        for (inp, _) in &lc.carried {
            assert!(lc.live_ins.contains(inp));
        }
    }

    #[test]
    fn resident_values_include_constants_and_bound() {
        let k = sample();
        let lc = LoopCode::build(&k, &machine());
        // The hoisted tbl[0] load and the loop bound.
        assert_eq!(lc.resident.len(), 2);
    }
}
