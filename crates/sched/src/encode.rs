//! VLIW instruction-word encoding.
//!
//! A schedule is an abstract placement; this module lowers it to the
//! bit-level long-instruction words a program ROM would hold, in the
//! style of the Multiflow encodings the paper's machines descend from:
//!
//! * every cycle is one *instruction word* made of fixed-width
//!   **operation slots** — one per ALU, memory port, and branch unit of
//!   each cluster, in cluster order;
//! * each slot packs `opcode(6) | dst(9) | src1(10) | src2(10) |
//!   src3(10)` into 45 bits (stored in a `u64`; the third source exists
//!   for the select operation). A source field holds either a register
//!   number or an index into the word's **immediate pool** (32-bit
//!   literals appended to the word — the "long immediates" VLIWs are
//!   named for);
//! * empty slots are NOPs. Because wide machines are mostly empty, words
//!   are stored **compressed**: a slot-occupancy mask plus only the
//!   occupied slots (the classic VLIW NOP-compression scheme);
//! * the encoder reports code size both raw and compressed — the code
//!   bloat of a given architecture is itself a design-space observable.
//!
//! [`decode`] inverts [`encode`] exactly; the round trip is tested here
//! and property-tested at the workspace level.

use crate::cluster::Assignment;
use crate::list::Schedule;
use crate::loopcode::{OpOrigin, SOp};
use crate::regalloc::{allocate, AllocError};
use cfp_ir::{BinOp, Inst, Operand, Pred, UnOp, Vreg};
use cfp_machine::{MachineResources, UnitClass};
use std::error::Error;
use std::fmt;

/// Bits per operation slot.
pub const SLOT_BITS: u32 = 45;
/// Register-number field width (up to 512 registers).
pub const REG_BITS: u32 = 9;
/// Source-operand field width (register or immediate-pool index + tag).
pub const SRC_BITS: u32 = 10;
/// Opcode field width.
pub const OPCODE_BITS: u32 = 6;

/// One operation slot's decoded form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedOp {
    /// Opcode number (see [`opcode_of`]).
    pub opcode: u8,
    /// Destination register (0 when none).
    pub dst: u16,
    /// First source field.
    pub src1: SrcField,
    /// Second source field.
    pub src2: SrcField,
    /// Third source field (selects only).
    pub src3: SrcField,
}

/// A source field: register or immediate-pool reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcField {
    /// Read a register.
    Reg(u16),
    /// Read the word's immediate pool at this index.
    Imm(u8),
    /// Unused.
    None,
}

/// One long-instruction word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstWord {
    /// Slot occupancy (bit `i` = slot `i` holds an op), LSB first.
    pub mask: u64,
    /// The occupied slots' encodings, in slot order.
    pub ops: Vec<u64>,
    /// The 32-bit immediate pool.
    pub imms: Vec<i32>,
}

/// A fully encoded loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// One word per cycle of the schedule.
    pub words: Vec<InstWord>,
    /// Slots per word on this machine.
    pub slots_per_word: usize,
}

impl Program {
    /// Raw size in bytes: every slot materialized (no compression),
    /// plus immediates.
    #[must_use]
    pub fn raw_bytes(&self) -> usize {
        self.words
            .iter()
            .map(|w| (self.slots_per_word * SLOT_BITS as usize).div_ceil(8) + 4 * w.imms.len())
            .sum()
    }

    /// Compressed size in bytes: mask word + occupied slots + pool.
    #[must_use]
    pub fn compressed_bytes(&self) -> usize {
        self.words
            .iter()
            .map(|w| 8 + (w.ops.len() * SLOT_BITS as usize).div_ceil(8) + 4 * w.imms.len())
            .sum()
    }
}

/// Encoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Register allocation failed (the kernel spills on this machine; the
    /// experiment rejects such unroll factors before encoding).
    Alloc(AllocError),
    /// A value had no allocated register (internal invariant).
    Unallocated(Vreg),
    /// A register number exceeds the field width.
    RegisterTooLarge(Vreg),
    /// More than 256 immediates in one word.
    ImmPoolOverflow {
        /// Offending cycle.
        cycle: u32,
    },
    /// An op landed on a slot the machine does not have.
    NoSlot {
        /// Offending op index.
        op: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Alloc(e) => write!(f, "{e}"),
            EncodeError::Unallocated(v) => write!(f, "no physical register for {v}"),
            EncodeError::RegisterTooLarge(v) => {
                write!(f, "virtual register {v} exceeds the {REG_BITS}-bit field")
            }
            EncodeError::ImmPoolOverflow { cycle } => {
                write!(f, "immediate pool overflow in cycle {cycle}")
            }
            EncodeError::NoSlot { op } => write!(f, "no hardware slot for op {op}"),
        }
    }
}

impl Error for EncodeError {}

impl From<AllocError> for EncodeError {
    fn from(e: AllocError) -> Self {
        EncodeError::Alloc(e)
    }
}

/// Opcode numbers. 0 is reserved (NOP).
#[must_use]
pub fn opcode_of(op: &SOp) -> u8 {
    match (&op.inst, op.origin) {
        (Some(Inst::Bin { op, .. }), _) => match op {
            BinOp::Add => 1,
            BinOp::Sub => 2,
            BinOp::Mul => 3,
            BinOp::And => 4,
            BinOp::Or => 5,
            BinOp::Xor => 6,
            BinOp::Shl => 7,
            BinOp::AShr => 8,
            BinOp::LShr => 9,
        },
        (Some(Inst::Un { op, .. }), _) => match op {
            UnOp::Copy => 10,
            UnOp::Neg => 11,
            UnOp::Not => 12,
            UnOp::Sext8 => 13,
            UnOp::Sext16 => 14,
            UnOp::Zext8 => 15,
            UnOp::Zext16 => 16,
        },
        (Some(Inst::Cmp { pred, .. }), _) => match pred {
            Pred::Eq => 17,
            Pred::Ne => 18,
            Pred::Lt => 19,
            Pred::Le => 20,
            Pred::Gt => 21,
            Pred::Ge => 22,
        },
        (Some(Inst::Sel { .. }), _) => 23,
        (Some(Inst::Ld { .. }), _) => 24,
        (Some(Inst::St { .. }), _) => 25,
        (None, OpOrigin::Move { .. }) => 26,
        (None, OpOrigin::StreamBump(_)) => 27,
        (None, OpOrigin::Induction) => 28,
        (None, OpOrigin::LoopTest) => 29,
        (None, OpOrigin::LoopBranch) => 30,
        (None, OpOrigin::Body(_)) => unreachable!("body ops carry insts"),
    }
}

/// The order in which a cluster's unit classes map to issue-slot
/// regions. Multiplies issue from ALU slots (mul-capable ones), so
/// `UnitClass::Mul` contributes no region of its own.
const SLOT_ORDER: [UnitClass; 4] = [
    UnitClass::Alu,
    UnitClass::L1Port,
    UnitClass::L2Port,
    UnitClass::Branch,
];

/// Slot layout: for each cluster, `alus` ALU slots, then its memory
/// ports (L1 then L2), then the branch unit if present. Returns the base
/// slot index of each cluster region and the total slot count.
fn slot_layout(machine: &MachineResources) -> (Vec<usize>, usize) {
    let mut bases = Vec::with_capacity(machine.cluster_count());
    let mut next = 0_usize;
    for c in 0..machine.cluster_count() {
        bases.push(next);
        next += SLOT_ORDER
            .iter()
            .map(|&u| machine.mdes.units(c, u) as usize)
            .sum::<usize>();
    }
    (bases, next)
}

fn pack(op: EncodedOp) -> u64 {
    // Source encoding: 0 = unused; tag bit set = register; tag bit clear
    // (but nonzero via the used-flag bit 8) = immediate-pool index. To
    // distinguish "unused" from "pool index 0" the immediate encoding
    // sets bit 8: `0b01_iiiiiiii`.
    let src = |s: SrcField| -> u64 {
        match s {
            SrcField::None => 0,
            SrcField::Reg(r) => (1 << (SRC_BITS - 1)) | u64::from(r),
            SrcField::Imm(i) => (1 << 8) | u64::from(i),
        }
    };
    (u64::from(op.opcode) << 39)
        | (u64::from(op.dst) << 30)
        | (src(op.src1) << 20)
        | (src(op.src2) << 10)
        | src(op.src3)
}

fn unpack(raw: u64) -> EncodedOp {
    let src = |bits: u64| -> SrcField {
        if bits & (1 << (SRC_BITS - 1)) != 0 {
            SrcField::Reg(u16::try_from(bits & 0x1ff).expect("9 bits"))
        } else if bits & (1 << 8) != 0 {
            SrcField::Imm(u8::try_from(bits & 0xff).expect("8 bits"))
        } else {
            SrcField::None
        }
    };
    EncodedOp {
        opcode: u8::try_from((raw >> 39) & 0x3f).expect("6 bits"),
        dst: u16::try_from((raw >> 30) & 0x1ff).expect("9 bits"),
        src1: src((raw >> 20) & 0x3ff),
        src2: src((raw >> 10) & 0x3ff),
        src3: src(raw & 0x3ff),
    }
}

/// Encode a compiled loop into long-instruction words. Physical
/// registers are assigned by [`allocate`] (linear scan over the
/// scheduled intervals), so register fields are real bank indexes.
///
/// # Errors
/// See [`EncodeError`]; in particular, kernels that spill on this
/// machine fail with [`EncodeError::Alloc`].
pub fn encode(
    assignment: &Assignment,
    schedule: &Schedule,
    machine: &MachineResources,
) -> Result<Program, EncodeError> {
    encode_traced(
        assignment,
        schedule,
        machine,
        &mut cfp_obs::UnitTrace::disabled(),
    )
}

/// [`encode`] recording one `encode` span with the word count and slot
/// width of the emitted program (or an `ok: false` field when register
/// allocation refuses the machine). With a disabled trace this is
/// exactly [`encode`].
///
/// # Errors
/// As [`encode`].
pub fn encode_traced(
    assignment: &Assignment,
    schedule: &Schedule,
    machine: &MachineResources,
    trace: &mut cfp_obs::UnitTrace<'_>,
) -> Result<Program, EncodeError> {
    use cfp_obs::{Stage, Value};
    let t0 = trace.start();
    let out = encode_inner(assignment, schedule, machine);
    match &out {
        Ok(p) => trace.stage(
            Stage::Encode,
            t0,
            &[
                ("words", Value::U64(p.words.len() as u64)),
                ("slots", Value::U64(p.slots_per_word as u64)),
            ],
        ),
        Err(_) => trace.stage(Stage::Encode, t0, &[("ok", Value::Bool(false))]),
    }
    out
}

fn encode_inner(
    assignment: &Assignment,
    schedule: &Schedule,
    machine: &MachineResources,
) -> Result<Program, EncodeError> {
    let phys = allocate(assignment, schedule, machine)?;
    let resolve = |v: Vreg, cluster: u32| -> Result<u16, EncodeError> {
        // Local first; a move reads its source from the owning cluster's
        // bank over the global connection.
        phys.get(v, cluster)
            .or_else(|| assignment.home_of.get(&v).and_then(|&h| phys.get(v, h)))
            .ok_or(EncodeError::Unallocated(v))
    };
    let (bases, total_slots) = slot_layout(machine);
    let mut words = vec![InstWord::default(); schedule.length as usize];
    // Occupied slot bookkeeping per (cycle, slot).
    let mut raw_slots: Vec<Vec<Option<u64>>> =
        vec![vec![None; total_slots]; schedule.length as usize];

    for (i, op) in assignment.code.ops.iter().enumerate() {
        let p = schedule.placements[i];
        let cl = p.cluster as usize;
        let base = bases[cl];
        // Region offsets within the cluster: walk SLOT_ORDER up to the
        // op's unit region (multiplies fold onto the ALU slots), reading
        // every width from the machine description.
        let unit = machine.mdes.op(op.class).unit;
        let region = if unit == UnitClass::Mul {
            UnitClass::Alu
        } else {
            unit
        };
        let mut lo = 0_usize;
        for &u in &SLOT_ORDER {
            if u == region {
                break;
            }
            lo += machine.mdes.units(cl, u) as usize;
        }
        let hi = lo + machine.mdes.units(cl, region) as usize;
        let word = &mut words[p.cycle as usize];
        let slot = (lo..hi)
            .find(|&s| raw_slots[p.cycle as usize][base + s].is_none())
            .ok_or(EncodeError::NoSlot { op: i })?;

        let mut fields = [SrcField::None, SrcField::None, SrcField::None];
        let mut n = 0;
        let add_field = |o: Operand,
                         word: &mut InstWord,
                         fields: &mut [SrcField; 3],
                         n: &mut usize,
                         cycle: u32|
         -> Result<(), EncodeError> {
            debug_assert!(*n < 3, "no op reads more than three values");
            fields[*n] = match o {
                Operand::Reg(v) => {
                    let r = resolve(v, p.cluster)?;
                    if u32::from(r) >= (1 << REG_BITS) {
                        return Err(EncodeError::RegisterTooLarge(v));
                    }
                    SrcField::Reg(r)
                }
                Operand::Imm(k) => {
                    let idx = word.imms.len();
                    if idx >= 256 {
                        return Err(EncodeError::ImmPoolOverflow { cycle });
                    }
                    word.imms.push(k as i32);
                    SrcField::Imm(u8::try_from(idx).expect("checked"))
                }
            };
            *n += 1;
            Ok(())
        };
        let mut operands = Vec::new();
        if let Some(inst) = &op.inst {
            inst.for_each_operand(|o| operands.push(o));
        } else {
            operands.extend(op.uses.iter().map(|&u| Operand::Reg(u)));
        }
        for o in operands {
            add_field(o, word, &mut fields, &mut n, p.cycle)?;
        }

        let dst = match op.def {
            Some(v) => {
                let r = resolve(v, p.cluster)?;
                if u32::from(r) >= (1 << REG_BITS) {
                    return Err(EncodeError::RegisterTooLarge(v));
                }
                r
            }
            None => 0,
        };
        raw_slots[p.cycle as usize][base + slot] = Some(pack(EncodedOp {
            opcode: opcode_of(op),
            dst,
            src1: fields[0],
            src2: fields[1],
            src3: fields[2],
        }));
    }

    for (t, slots) in raw_slots.into_iter().enumerate() {
        for (s, raw) in slots.into_iter().enumerate() {
            if let Some(r) = raw {
                words[t].mask |= 1 << s;
                words[t].ops.push(r);
            }
        }
    }
    Ok(Program {
        words,
        slots_per_word: total_slots,
    })
}

/// Decode a program back into per-cycle op lists.
#[must_use]
pub fn decode(program: &Program) -> Vec<Vec<(usize, EncodedOp)>> {
    program
        .words
        .iter()
        .map(|w| {
            let mut out = Vec::with_capacity(w.ops.len());
            let mut op_iter = w.ops.iter();
            for slot in 0..64 {
                if w.mask & (1 << slot) != 0 {
                    let raw = op_iter.next().expect("mask matches ops");
                    out.push((slot, unpack(*raw)));
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cfp_frontend::compile_kernel;
    use cfp_machine::ArchSpec;

    fn program_for(
        src: &str,
        spec: &ArchSpec,
    ) -> (Program, crate::compile::CompileResult, MachineResources) {
        let k = compile_kernel(src, &[]).unwrap();
        let m = MachineResources::from_spec(spec);
        let r = compile(&k, &m);
        let p = encode(&r.assignment, &r.schedule, &m).expect("encodes");
        (p, r, m)
    }

    const SRC: &str = "kernel k(in u8 s[], out i32 d[]) {
        loop i {
            var a = s[3*i] * 5;
            var b = s[3*i + 1] * 7;
            var c = s[3*i + 2];
            d[i] = (a + b) + (c > 100 ? c : 0);
        }
    }";

    #[test]
    fn one_word_per_cycle_and_all_ops_present() {
        let (p, r, _) = program_for(SRC, &ArchSpec::new(4, 2, 128, 2, 4, 1).unwrap());
        assert_eq!(p.words.len(), r.schedule.length as usize);
        let encoded: usize = p.words.iter().map(|w| w.ops.len()).sum();
        assert_eq!(encoded, r.assignment.code.ops.len());
        for w in &p.words {
            assert_eq!(w.mask.count_ones() as usize, w.ops.len());
        }
    }

    #[test]
    fn decode_inverts_encode() {
        let (p, r, _) = program_for(SRC, &ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap());
        let decoded = decode(&p);
        assert_eq!(decoded.len(), p.words.len());
        let total: usize = decoded.iter().map(Vec::len).sum();
        assert_eq!(total, r.assignment.code.ops.len());
        // Every decoded opcode is a real opcode.
        for word in &decoded {
            for (_, op) in word {
                assert!((1..=30).contains(&op.opcode), "{op:?}");
            }
        }
    }

    #[test]
    fn compression_wins_on_wide_machines() {
        let (p, ..) = program_for(SRC, &ArchSpec::new(16, 8, 512, 4, 4, 1).unwrap());
        assert!(
            p.compressed_bytes() < p.raw_bytes(),
            "compressed {} raw {}",
            p.compressed_bytes(),
            p.raw_bytes()
        );
        // A 16-wide machine running narrow code is mostly NOPs.
        assert!(p.compressed_bytes() * 2 < p.raw_bytes());
    }

    #[test]
    fn baseline_words_are_narrow() {
        let (p, ..) = program_for(SRC, &ArchSpec::baseline());
        // 1 ALU + 1 L1 + 1 L2 + 1 branch = 4 slots.
        assert_eq!(p.slots_per_word, 4);
        for w in &p.words {
            assert!(w.ops.len() <= 4);
        }
    }

    #[test]
    fn immediates_land_in_the_pool() {
        let (p, ..) = program_for(SRC, &ArchSpec::baseline());
        let imm_total: usize = p.words.iter().map(|w| w.imms.len()).sum();
        assert!(imm_total >= 2, "the multiplies' constants live in pools");
    }
}
