//! Instructions, operands, and affine memory references.

use crate::kernel::ArrayId;
use crate::op::{BinOp, Pred, UnOp};
use crate::types::Ty;
use std::fmt;

/// A virtual register. The compiler allocates these freely; the back end
/// later checks that the scheduled code fits in the target's real register
/// files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vreg(pub u32);

impl Vreg {
    /// Index into dense per-vreg tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An instruction operand: a virtual register or an immediate.
///
/// Immediates are free in the machine model (VLIW long-immediate fields),
/// matching the Multiflow-style encodings the paper builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Vreg),
    /// A 32-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    #[must_use]
    pub fn reg(self) -> Option<Vreg> {
        match self {
            Operand::Reg(v) => Some(v),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate value, if this operand is one.
    #[must_use]
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(i) => Some(i),
        }
    }
}

impl From<Vreg> for Operand {
    fn from(v: Vreg) -> Self {
        Operand::Reg(v)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(v) => v.fmt(f),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// An affine memory reference: element index `coeff * iter + offset`,
/// plus an optional dynamic component.
///
/// `iter` is the index of the kernel's surviving outer loop. Keeping the
/// access function symbolic (rather than materializing address arithmetic
/// in the IR) gives the scheduler's dependence test exact information and
/// matches a machine with register+offset addressing and autonomous
/// address streams; the per-iteration pointer-bump and loop-control
/// operations are added back as explicit scheduled operations by the back
/// end so their issue slots are still paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Which declared array is accessed.
    pub array: ArrayId,
    /// Elements advanced per outer-loop iteration.
    pub coeff: i64,
    /// Constant element offset.
    pub offset: i64,
    /// Optional dynamic extra index (defeats exact dependence analysis).
    pub dyn_index: Option<Operand>,
}

impl MemRef {
    /// A purely affine reference.
    #[must_use]
    pub fn affine(array: ArrayId, coeff: i64, offset: i64) -> Self {
        MemRef {
            array,
            coeff,
            offset,
            dyn_index: None,
        }
    }

    /// Element index at a given iteration, with the dynamic part resolved
    /// by the caller (0 if absent).
    #[must_use]
    pub fn element_index(&self, iter: i64, dyn_value: i64) -> i64 {
        self.coeff * iter + self.offset + dyn_value
    }

    /// Whether the access function is fully known at compile time.
    #[must_use]
    pub fn is_affine(&self) -> bool {
        self.dyn_index.is_none()
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}[{}*i{:+}", self.array.0, self.coeff, self.offset)?;
        if let Some(d) = self.dyn_index {
            write!(f, "+{d}")?;
        }
        f.write_str("]")
    }
}

/// One straight-line IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `dst = op(a, b)`.
    Bin {
        /// Destination register.
        dst: Vreg,
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = op(a)`.
    Un {
        /// Destination register.
        dst: Vreg,
        /// Operation.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = (a pred b) ? 1 : 0`.
    Cmp {
        /// Destination register.
        dst: Vreg,
        /// Predicate.
        pred: Pred,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = cond != 0 ? on_true : on_false` (the if-conversion primitive).
    Sel {
        /// Destination register.
        dst: Vreg,
        /// Condition (any non-zero value selects `on_true`).
        cond: Operand,
        /// Value when the condition is non-zero.
        on_true: Operand,
        /// Value when the condition is zero.
        on_false: Operand,
    },
    /// `dst = load.ty mem`.
    Ld {
        /// Destination register.
        dst: Vreg,
        /// Access function.
        mem: MemRef,
        /// Element type (controls widening).
        ty: Ty,
    },
    /// `store.ty mem = value`.
    St {
        /// Access function.
        mem: MemRef,
        /// Value to store (narrowed to `ty`).
        value: Operand,
        /// Element type (controls narrowing).
        ty: Ty,
    },
}

impl Inst {
    /// Register defined by this instruction, if any.
    #[must_use]
    pub fn def(&self) -> Option<Vreg> {
        match *self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Sel { dst, .. }
            | Inst::Ld { dst, .. } => Some(dst),
            Inst::St { .. } => None,
        }
    }

    /// Registers read by this instruction, in operand order.
    #[must_use]
    pub fn uses(&self) -> Vec<Vreg> {
        let mut out = Vec::with_capacity(3);
        self.for_each_operand(|o| {
            if let Operand::Reg(v) = o {
                out.push(v);
            }
        });
        out
    }

    /// Visit every operand (not the destination).
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match *self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Sel {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            Inst::Ld { mem, .. } => {
                if let Some(d) = mem.dyn_index {
                    f(d);
                }
            }
            Inst::St { mem, value, .. } => {
                if let Some(d) = mem.dyn_index {
                    f(d);
                }
                f(value);
            }
        }
    }

    /// Rewrite every operand (not the destination) through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Inst::Un { a, .. } => *a = f(*a),
            Inst::Sel {
                cond,
                on_true,
                on_false,
                ..
            } => {
                *cond = f(*cond);
                *on_true = f(*on_true);
                *on_false = f(*on_false);
            }
            Inst::Ld { mem, .. } => {
                if let Some(d) = &mut mem.dyn_index {
                    *d = f(*d);
                }
            }
            Inst::St { mem, value, .. } => {
                if let Some(d) = &mut mem.dyn_index {
                    *d = f(*d);
                }
                *value = f(*value);
            }
        }
    }

    /// Rewrite the destination register through `f`.
    pub fn map_def(&mut self, f: impl FnOnce(Vreg) -> Vreg) {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Sel { dst, .. }
            | Inst::Ld { dst, .. } => *dst = f(*dst),
            Inst::St { .. } => {}
        }
    }

    /// The memory reference touched by this instruction, if any.
    #[must_use]
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Inst::Ld { mem, .. } | Inst::St { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Mutable access to the memory reference, if any.
    pub fn mem_mut(&mut self) -> Option<&mut MemRef> {
        match self {
            Inst::Ld { mem, .. } | Inst::St { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// Whether this is a memory access (load or store).
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.mem().is_some()
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::St { .. })
    }

    /// Whether this instruction requires an IMUL-capable ALU.
    #[must_use]
    pub fn needs_mul_unit(&self) -> bool {
        matches!(self, Inst::Bin { op, .. } if op.needs_mul_unit())
    }

    /// Convenience constructor for a register-to-register copy.
    #[must_use]
    pub fn mov(dst: Vreg, src: impl Into<Operand>) -> Inst {
        Inst::Un {
            dst,
            op: UnOp::Copy,
            a: src.into(),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Bin { dst, op, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            Inst::Un { dst, op, a } => write!(f, "{dst} = {op} {a}"),
            Inst::Cmp { dst, pred, a, b } => write!(f, "{dst} = cmp.{pred} {a}, {b}"),
            Inst::Sel {
                dst,
                cond,
                on_true,
                on_false,
            } => write!(f, "{dst} = sel {cond} ? {on_true} : {on_false}"),
            Inst::Ld { dst, mem, ty } => write!(f, "{dst} = ld.{ty} {mem}"),
            Inst::St { mem, value, ty } => write!(f, "st.{ty} {mem} = {value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ArrayId;

    fn v(n: u32) -> Vreg {
        Vreg(n)
    }

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            dst: v(2),
            op: BinOp::Add,
            a: Operand::Reg(v(0)),
            b: Operand::Imm(3),
        };
        assert_eq!(i.def(), Some(v(2)));
        assert_eq!(i.uses(), vec![v(0)]);

        let s = Inst::St {
            mem: MemRef::affine(ArrayId(0), 1, 0),
            value: Operand::Reg(v(5)),
            ty: Ty::U8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![v(5)]);
        assert!(s.is_store());
    }

    #[test]
    fn sel_uses_all_three() {
        let i = Inst::Sel {
            dst: v(3),
            cond: Operand::Reg(v(0)),
            on_true: Operand::Reg(v(1)),
            on_false: Operand::Reg(v(2)),
        };
        assert_eq!(i.uses(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn map_operands_rewrites() {
        let mut i = Inst::Bin {
            dst: v(2),
            op: BinOp::Add,
            a: Operand::Reg(v(0)),
            b: Operand::Reg(v(1)),
        };
        i.map_operands(|o| match o {
            Operand::Reg(Vreg(n)) => Operand::Reg(Vreg(n + 10)),
            imm => imm,
        });
        assert_eq!(i.uses(), vec![v(10), v(11)]);
    }

    #[test]
    fn dynamic_index_counts_as_use() {
        let mem = MemRef {
            array: ArrayId(1),
            coeff: 3,
            offset: 1,
            dyn_index: Some(Operand::Reg(v(9))),
        };
        let l = Inst::Ld {
            dst: v(1),
            mem,
            ty: Ty::I16,
        };
        assert_eq!(l.uses(), vec![v(9)]);
        assert!(!mem.is_affine());
        assert_eq!(mem.element_index(4, 2), 3 * 4 + 1 + 2);
    }

    #[test]
    fn display_is_stable() {
        let i = Inst::Ld {
            dst: v(7),
            mem: MemRef::affine(ArrayId(2), 3, -1),
            ty: Ty::U8,
        };
        assert_eq!(i.to_string(), "v7 = ld.u8 a2[3*i-1]");
    }

    #[test]
    fn mov_constructor() {
        let m = Inst::mov(v(1), 42_i64);
        assert_eq!(m.to_string(), "v1 = mov #42");
        assert_eq!(m.def(), Some(v(1)));
    }
}
