//! The compilation unit: a single loop kernel.

use crate::inst::{Inst, Vreg};
use crate::types::{MemSpace, Ty};
use std::fmt;

/// Identifies a declared array within one [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Index into dense per-array tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// How an array is bound at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// Read-only input provided by the caller.
    In,
    /// Write-only output provided by the caller.
    Out,
    /// Read-write buffer provided by the caller (e.g. the Floyd–Steinberg
    /// error line).
    InOut,
    /// Kernel-local scratch of a fixed element count.
    Local(u32),
}

impl ArrayKind {
    /// Whether the kernel may read from the array.
    #[must_use]
    pub fn readable(self) -> bool {
        !matches!(self, ArrayKind::Out)
    }

    /// Whether the kernel may write to the array.
    #[must_use]
    pub fn writable(self) -> bool {
        !matches!(self, ArrayKind::In)
    }
}

/// A declared array: name, element type, memory space, binding kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name (diagnostics and pretty-printing only).
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Which memory level holds it.
    pub space: MemSpace,
    /// Binding kind.
    pub kind: ArrayKind,
}

/// Initial value of a loop-carried scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarriedInit {
    /// A compile-time constant.
    Const(i64),
    /// The value computed by the preamble into this register.
    Preamble(Vreg),
}

/// One loop-carried scalar: the body reads `input`, and the value written
/// to `output` in iteration *i* becomes `input` in iteration *i + 1*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Carried {
    /// Register the body reads (the carried-in value).
    pub input: Vreg,
    /// Register whose end-of-iteration value is carried forward. May equal
    /// `input` when an iteration leaves the value unchanged.
    pub output: Vreg,
    /// Value of `input` on the first iteration.
    pub init: CarriedInit,
}

/// A compiled loop kernel: the unit the scheduler and the design-space
/// exploration operate on.
///
/// Semantics: run `preamble` once, then for each iteration `i` in
/// `0..n` run `body` with carried inputs bound (from `init` on the first
/// iteration, from the previous iteration's outputs afterwards). All
/// control flow has been if-converted; all constant-bound inner loops have
/// been fully unrolled. One iteration of `body` produces one output unit
/// (a pixel, a pixel triple, or an 8×8 block, depending on the kernel).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Kernel {
    /// Kernel name (from the DSL source).
    pub name: String,
    /// Declared arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Run-once setup code (hoisted loop-invariant loads and constants).
    /// Values defined here stay live across the whole loop.
    pub preamble: Vec<Inst>,
    /// One iteration of the loop body.
    pub body: Vec<Inst>,
    /// Loop-carried scalars.
    pub carried: Vec<Carried>,
    /// How many *source-level* output units one body iteration produces.
    /// 1 before unrolling; multiplied by the unroll factor afterwards.
    pub outputs_per_iter: u32,
}

impl Kernel {
    /// Create an empty kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            outputs_per_iter: 1,
            ..Kernel::default()
        }
    }

    /// Look up an array declaration.
    ///
    /// # Panics
    /// Panics if `id` was not declared in this kernel.
    #[must_use]
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Number of virtual registers used (1 + highest index), considering
    /// preamble, body, and carried declarations.
    #[must_use]
    pub fn vreg_count(&self) -> u32 {
        let mut max = 0_u32;
        let mut see = |v: Vreg| max = max.max(v.0 + 1);
        for i in self.preamble.iter().chain(&self.body) {
            if let Some(d) = i.def() {
                see(d);
            }
            for u in i.uses() {
                see(u);
            }
        }
        for c in &self.carried {
            see(c.input);
            see(c.output);
            if let CarriedInit::Preamble(v) = c.init {
                see(v);
            }
        }
        max
    }

    /// Registers that are live-in to the body: carried inputs plus every
    /// preamble-defined register the body (or the carried inits) uses.
    #[must_use]
    pub fn body_live_ins(&self) -> Vec<Vreg> {
        let mut seen = vec![false; self.vreg_count() as usize];
        let mut out = Vec::new();
        for c in &self.carried {
            if !std::mem::replace(&mut seen[c.input.index()], true) {
                out.push(c.input);
            }
        }
        let body_defs: std::collections::HashSet<Vreg> =
            self.body.iter().filter_map(Inst::def).collect();
        let carried_in: std::collections::HashSet<Vreg> =
            self.carried.iter().map(|c| c.input).collect();
        for i in &self.body {
            for u in i.uses() {
                if !body_defs.contains(&u)
                    && !carried_in.contains(&u)
                    && !std::mem::replace(&mut seen[u.index()], true)
                {
                    out.push(u);
                }
            }
        }
        out
    }

    /// Count of body instructions that need an IMUL unit.
    #[must_use]
    pub fn mul_count(&self) -> usize {
        self.body.iter().filter(|i| i.needs_mul_unit()).count()
    }

    /// Count of body memory accesses per memory space `(l1, l2)`.
    #[must_use]
    pub fn mem_counts(&self) -> (usize, usize) {
        let mut l1 = 0;
        let mut l2 = 0;
        for i in &self.body {
            if let Some(m) = i.mem() {
                match self.array(m.array).space {
                    MemSpace::L1 => l1 += 1,
                    MemSpace::L2 => l2 += 1,
                }
            }
        }
        (l1, l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{MemRef, Operand};
    use crate::op::BinOp;

    fn sample() -> Kernel {
        let mut k = Kernel::new("t");
        k.arrays.push(ArrayDecl {
            name: "src".into(),
            ty: Ty::U8,
            space: MemSpace::L2,
            kind: ArrayKind::In,
        });
        k.preamble.push(Inst::mov(Vreg(0), 7_i64));
        k.body.push(Inst::Ld {
            dst: Vreg(1),
            mem: MemRef::affine(ArrayId(0), 1, 0),
            ty: Ty::U8,
        });
        k.body.push(Inst::Bin {
            dst: Vreg(2),
            op: BinOp::Mul,
            a: Operand::Reg(Vreg(1)),
            b: Operand::Reg(Vreg(0)),
        });
        k.body.push(Inst::Bin {
            dst: Vreg(3),
            op: BinOp::Add,
            a: Operand::Reg(Vreg(2)),
            b: Operand::Reg(Vreg(4)),
        });
        k.carried.push(Carried {
            input: Vreg(4),
            output: Vreg(3),
            init: CarriedInit::Const(0),
        });
        k
    }

    #[test]
    fn vreg_count_spans_everything() {
        assert_eq!(sample().vreg_count(), 5);
    }

    #[test]
    fn live_ins_are_carried_plus_preamble_values() {
        let li = sample().body_live_ins();
        assert!(li.contains(&Vreg(4)), "carried input");
        assert!(li.contains(&Vreg(0)), "preamble constant");
        assert!(!li.contains(&Vreg(1)), "body-defined");
        assert_eq!(li.len(), 2);
    }

    #[test]
    fn counts() {
        let k = sample();
        assert_eq!(k.mul_count(), 1);
        assert_eq!(k.mem_counts(), (0, 1));
    }

    #[test]
    fn array_kind_permissions() {
        assert!(ArrayKind::In.readable() && !ArrayKind::In.writable());
        assert!(!ArrayKind::Out.readable() && ArrayKind::Out.writable());
        assert!(ArrayKind::InOut.readable() && ArrayKind::InOut.writable());
        assert!(ArrayKind::Local(8).readable() && ArrayKind::Local(8).writable());
    }
}
