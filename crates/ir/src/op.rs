//! Operation kinds and their evaluation semantics.
//!
//! Following the paper's RISC/VLIW philosophy the repertoire is small and
//! simple: integer add/sub/logicals/shifts at 1 cycle, integer multiply at
//! 2 cycles (pipelined), compares producing 0/1, and a select. There are
//! deliberately no fused or "smart" operations (no min/max, no MAC): the
//! paper matches *structures and sizes* to the application, not opcodes.

use crate::wrap32;
use std::fmt;

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// 32-bit wrapping add.
    Add,
    /// 32-bit wrapping subtract.
    Sub,
    /// 32-bit wrapping multiply (2-cycle pipelined; needs an IMUL unit).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (amount masked to 5 bits).
    Shl,
    /// Arithmetic shift right (amount masked to 5 bits).
    AShr,
    /// Logical shift right (amount masked to 5 bits).
    LShr,
}

impl BinOp {
    /// Evaluate with 32-bit register semantics.
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let sh = (b & 31) as u32;
        match self {
            BinOp::Add => wrap32(a.wrapping_add(b)),
            BinOp::Sub => wrap32(a.wrapping_sub(b)),
            BinOp::Mul => wrap32(a.wrapping_mul(b)),
            BinOp::And => wrap32(a & b),
            BinOp::Or => wrap32(a | b),
            BinOp::Xor => wrap32(a ^ b),
            BinOp::Shl => wrap32((a as i32).wrapping_shl(sh) as i64),
            BinOp::AShr => i64::from((a as i32) >> sh),
            BinOp::LShr => i64::from((a as i32 as u32) >> sh),
        }
    }

    /// Whether this operation requires an IMUL-capable ALU.
    #[must_use]
    pub fn needs_mul_unit(self) -> bool {
        matches!(self, BinOp::Mul)
    }

    /// Whether `op(a, b) == op(b, a)` for all inputs.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// The mnemonic used by the pretty-printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
        }
    }

    /// All binary operations, for exhaustive property tests.
    #[must_use]
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::LShr,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Register-to-register copy (also the op used for immediates and the
    /// scheduler's inter-cluster moves).
    Copy,
    /// Two's-complement negate.
    Neg,
    /// Bitwise not.
    Not,
    /// Sign-extend the low 8 bits.
    Sext8,
    /// Sign-extend the low 16 bits.
    Sext16,
    /// Zero-extend the low 8 bits.
    Zext8,
    /// Zero-extend the low 16 bits.
    Zext16,
}

impl UnOp {
    /// Evaluate with 32-bit register semantics.
    #[must_use]
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Copy => wrap32(a),
            UnOp::Neg => wrap32(a.wrapping_neg()),
            UnOp::Not => wrap32(!a),
            UnOp::Sext8 => a as i8 as i64,
            UnOp::Sext16 => a as i16 as i64,
            UnOp::Zext8 => a & 0xff,
            UnOp::Zext16 => a & 0xffff,
        }
    }

    /// The mnemonic used by the pretty-printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Copy => "mov",
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Sext8 => "sxtb",
            UnOp::Sext16 => "sxth",
            UnOp::Zext8 => "uxtb",
            UnOp::Zext16 => "uxth",
        }
    }

    /// All unary operations, for exhaustive property tests.
    #[must_use]
    pub fn all() -> &'static [UnOp] {
        &[
            UnOp::Copy,
            UnOp::Neg,
            UnOp::Not,
            UnOp::Sext8,
            UnOp::Sext16,
            UnOp::Zext8,
            UnOp::Zext16,
        ]
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicates (signed). Compares produce 0 or 1 in a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl Pred {
    /// Evaluate to 1 (true) or 0 (false).
    #[must_use]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let (a, b) = (wrap32(a), wrap32(b));
        let t = match self {
            Pred::Eq => a == b,
            Pred::Ne => a != b,
            Pred::Lt => a < b,
            Pred::Le => a <= b,
            Pred::Gt => a > b,
            Pred::Ge => a >= b,
        };
        i64::from(t)
    }

    /// The predicate with operands swapped: `a P b == b P.swap() a`.
    #[must_use]
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
        }
    }

    /// The logical negation: `!(a P b) == a P.negated() b`.
    #[must_use]
    pub fn negated(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Lt => Pred::Ge,
            Pred::Le => Pred::Gt,
            Pred::Gt => Pred::Le,
            Pred::Ge => Pred::Lt,
        }
    }

    /// The mnemonic used by the pretty-printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Lt => "lt",
            Pred::Le => "le",
            Pred::Gt => "gt",
            Pred::Ge => "ge",
        }
    }

    /// All predicates, for exhaustive property tests.
    #[must_use]
    pub fn all() -> &'static [Pred] {
        &[Pred::Eq, Pred::Ne, Pred::Lt, Pred::Le, Pred::Gt, Pred::Ge]
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(BinOp::Add.eval(i64::from(i32::MAX), 1), i64::from(i32::MIN));
        assert_eq!(BinOp::Add.eval(2, 3), 5);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(BinOp::Shl.eval(1, 33), 2);
        assert_eq!(BinOp::AShr.eval(-8, 1), -4);
        assert_eq!(BinOp::LShr.eval(-8, 1), i64::from(u32::MAX >> 1) - 3);
        assert_eq!(BinOp::LShr.eval(-1, 24), 0xff);
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(BinOp::Mul.eval(1 << 16, 1 << 16), 0);
        assert_eq!(BinOp::Mul.eval(-3, 7), -21);
    }

    #[test]
    fn commutativity_claims_hold() {
        for &op in BinOp::all() {
            if op.is_commutative() {
                for a in [-7_i64, 0, 3, 1 << 30] {
                    for b in [-1_i64, 2, 255] {
                        assert_eq!(op.eval(a, b), op.eval(b, a), "{op}");
                    }
                }
            }
        }
    }

    #[test]
    fn pred_swap_and_negate() {
        for &p in Pred::all() {
            for a in [-2_i64, 0, 5] {
                for b in [-2_i64, 0, 5] {
                    assert_eq!(p.eval(a, b), p.swapped().eval(b, a), "{p} swap");
                    assert_eq!(p.eval(a, b), 1 - p.negated().eval(a, b), "{p} neg");
                }
            }
        }
    }

    #[test]
    fn unops() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), -1);
        assert_eq!(UnOp::Sext8.eval(0x80), -128);
        assert_eq!(UnOp::Zext8.eval(-1), 0xff);
        assert_eq!(UnOp::Sext16.eval(0x8000), -0x8000);
        assert_eq!(UnOp::Zext16.eval(-1), 0xffff);
        assert_eq!(UnOp::Copy.eval(42), 42);
    }

    #[test]
    fn only_mul_needs_mul_unit() {
        for &op in BinOp::all() {
            assert_eq!(op.needs_mul_unit(), op == BinOp::Mul);
        }
    }
}
