//! Human-readable kernel listings.

use crate::kernel::{ArrayKind, CarriedInit, Kernel};
use std::fmt;

/// Wraps a [`Kernel`] to render a full listing with `{}`.
///
/// ```
/// use cfp_ir::{KernelBuilder, MemSpace, Ty, pretty::Listing};
/// let mut b = KernelBuilder::new("demo");
/// let s = b.array_in("src", Ty::U8, MemSpace::L2);
/// let x = b.load(s, 1, 0, Ty::U8);
/// let _ = b.add(x, 1_i64);
/// let text = Listing(&b.finish()).to_string();
/// assert!(text.contains("kernel demo"));
/// ```
#[derive(Debug)]
pub struct Listing<'a>(pub &'a Kernel);

impl fmt::Display for Listing<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = self.0;
        writeln!(f, "kernel {} {{", k.name)?;
        for (i, a) in k.arrays.iter().enumerate() {
            let kind = match a.kind {
                ArrayKind::In => "in".to_owned(),
                ArrayKind::Out => "out".to_owned(),
                ArrayKind::InOut => "inout".to_owned(),
                ArrayKind::Local(n) => format!("local[{n}]"),
            };
            writeln!(f, "  a{i}: {kind} {} {} `{}`", a.space, a.ty, a.name)?;
        }
        if !k.preamble.is_empty() {
            writeln!(f, "  preamble:")?;
            for inst in &k.preamble {
                writeln!(f, "    {inst}")?;
            }
        }
        if !k.carried.is_empty() {
            writeln!(f, "  carried:")?;
            for c in &k.carried {
                let init = match c.init {
                    CarriedInit::Const(v) => format!("#{v}"),
                    CarriedInit::Preamble(v) => v.to_string(),
                };
                writeln!(f, "    {} <- {} (init {init})", c.input, c.output)?;
            }
        }
        writeln!(f, "  body: // x{} output/iter", k.outputs_per_iter)?;
        for inst in &k.body {
            writeln!(f, "    {inst}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::kernel::CarriedInit;
    use crate::types::{MemSpace, Ty};

    #[test]
    fn listing_contains_all_sections() {
        let mut b = KernelBuilder::new("full");
        let src = b.array_in("src", Ty::U8, MemSpace::L2);
        let _scr = b.array_local("scratch", Ty::I32, MemSpace::L2, 16);
        b.in_preamble(true);
        let c = b.mov(3_i64);
        b.in_preamble(false);
        let x = b.load(src, 1, 0, Ty::U8);
        let s_in = b.fresh();
        let s_out = b.add(s_in, x);
        b.carry_into(s_in, s_out, CarriedInit::Preamble(c));
        let text = Listing(&b.finish()).to_string();
        assert!(text.contains("kernel full {"));
        assert!(text.contains("a0: in l2 u8 `src`"));
        assert!(text.contains("local[16]"));
        assert!(text.contains("preamble:"));
        assert!(text.contains("carried:"));
        assert!(text.contains("body:"));
        assert!(text.ends_with('}'));
    }
}
