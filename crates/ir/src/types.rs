//! Element types and memory spaces.

use std::fmt;

/// Scalar element type of an array (and of loads/stores into it).
///
/// All *register* values are 32-bit integers (see [`crate::wrap32`]);
/// `Ty` only controls how values are narrowed on store and widened on
/// load, exactly like a byte/halfword memory access on a 32-bit RISC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Unsigned 8-bit (`ubyte` in the paper's listings).
    U8,
    /// Signed 8-bit.
    I8,
    /// Unsigned 16-bit.
    U16,
    /// Signed 16-bit (`int16` in the paper's listings).
    I16,
    /// Signed 32-bit (the native register width).
    I32,
}

impl Ty {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> u32 {
        match self {
            Ty::U8 | Ty::I8 => 1,
            Ty::U16 | Ty::I16 => 2,
            Ty::I32 => 4,
        }
    }

    /// Narrow a register value to this type's range, as a store would.
    #[must_use]
    pub fn truncate(self, v: i64) -> i64 {
        match self {
            Ty::U8 => v & 0xff,
            Ty::I8 => v as i8 as i64,
            Ty::U16 => v & 0xffff,
            Ty::I16 => v as i16 as i64,
            Ty::I32 => v as i32 as i64,
        }
    }

    /// Widen a stored element back to a register value, as a load would.
    ///
    /// For values already produced by [`Ty::truncate`] this is the
    /// identity, which is what lets the interpreter store elements as
    /// plain `i64`.
    #[must_use]
    pub fn extend(self, v: i64) -> i64 {
        self.truncate(v)
    }

    /// Whether loads of this type sign-extend.
    #[must_use]
    pub fn is_signed(self) -> bool {
        matches!(self, Ty::I8 | Ty::I16 | Ty::I32)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::U8 => "u8",
            Ty::I8 => "i8",
            Ty::U16 => "u16",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// Which level of the two-level memory system an array lives in.
///
/// The paper's template has a single-ported *Level 1* memory with a fixed
/// 3-cycle non-pipelined access (modelling the system's global memory) and
/// a *Level 2* memory whose port count and latency are free parameters of
/// the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Global (Level 1) memory: one port chip-wide, 3-cycle non-pipelined.
    L1,
    /// Local (Level 2) memory: 1–4 ports, 2–8 cycle non-pipelined.
    L2,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::L1 => "l1",
            MemSpace::L2 => "l2",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_u8_masks() {
        assert_eq!(Ty::U8.truncate(0x1ff), 0xff);
        assert_eq!(Ty::U8.truncate(-1), 0xff);
        assert_eq!(Ty::U8.truncate(5), 5);
    }

    #[test]
    fn truncate_i16_sign_extends() {
        assert_eq!(Ty::I16.truncate(0x8000), -0x8000);
        assert_eq!(Ty::I16.truncate(0x7fff), 0x7fff);
        assert_eq!(Ty::I16.truncate(-1), -1);
    }

    #[test]
    fn extend_is_identity_on_truncated() {
        for ty in [Ty::U8, Ty::I8, Ty::U16, Ty::I16, Ty::I32] {
            for v in [-300_i64, -1, 0, 1, 127, 128, 255, 256, 65535, 1 << 20] {
                let t = ty.truncate(v);
                assert_eq!(ty.extend(t), t, "{ty} {v}");
            }
        }
    }

    #[test]
    fn sizes() {
        assert_eq!(Ty::U8.size_bytes(), 1);
        assert_eq!(Ty::I16.size_bytes(), 2);
        assert_eq!(Ty::I32.size_bytes(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::U8.to_string(), "u8");
        assert_eq!(MemSpace::L1.to_string(), "l1");
        assert_eq!(MemSpace::L2.to_string(), "l2");
    }
}
