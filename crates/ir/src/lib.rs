//! # cfp-ir — the intermediate representation of the custom-fit toolchain
//!
//! This crate defines the loop-level IR that the whole system revolves
//! around. A [`Kernel`] models one image-processing loop nest after the
//! front end has fully unrolled constant-bound inner loops and if-converted
//! all control flow: what remains is a *preamble* (executed once; typically
//! hoisted coefficient loads) and a straight-line *body* executed once per
//! iteration of the surviving outer loop, plus a set of *loop-carried*
//! scalar values threaded from one iteration to the next.
//!
//! The representation is deliberately close to what a clustered VLIW
//! scheduler wants to consume:
//!
//! * operations are simple RISC-style scalar ops over virtual registers
//!   ([`Inst`], [`BinOp`], [`UnOp`], [`Pred`]);
//! * memory accesses carry an *affine* reference ([`MemRef`]) — element
//!   index `coeff * iteration + offset (+ dynamic)` — which is exactly the
//!   information the scheduler's memory-dependence test needs;
//! * arrays are declared with a memory space ([`MemSpace`]) matching the
//!   paper's two-level memory system.
//!
//! The crate also provides a reference [`interp`] interpreter (the golden
//! executor against which scheduled code is validated), a structural
//! [`mod@verify`] pass, [`liveness`] analysis, and a pretty-printer.
//!
//! ```
//! use cfp_ir::{KernelBuilder, MemSpace, Ty, Operand};
//!
//! // dst[i] = src[i] * 3 + 1
//! let mut b = KernelBuilder::new("saxpyish");
//! let src = b.array_in("src", Ty::U8, MemSpace::L2);
//! let dst = b.array_out("dst", Ty::U8, MemSpace::L2);
//! let x = b.load(src, 1, 0, Ty::U8);
//! let m = b.mul(x, Operand::Imm(3));
//! let r = b.add(m, Operand::Imm(1));
//! b.store(dst, 1, 0, r, Ty::U8);
//! let kernel = b.finish();
//! assert!(cfp_ir::verify::verify(&kernel).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod inst;
pub mod interp;
pub mod kernel;
pub mod liveness;
pub mod op;
pub mod pretty;
pub mod types;
pub mod verify;

pub use build::KernelBuilder;
pub use inst::{Inst, MemRef, Operand, Vreg};
pub use interp::{Interpreter, MemImage};
pub use kernel::{ArrayDecl, ArrayId, ArrayKind, Carried, CarriedInit, Kernel};
pub use liveness::{BodyLiveness, LiveRange};
pub use op::{BinOp, Pred, UnOp};
pub use types::{MemSpace, Ty};
pub use verify::{verify, VerifyError};

/// Wrap an `i64` to the semantics of a 32-bit two's-complement register.
///
/// Every ALU result in the machine model is a 32-bit integer; the
/// interpreter and the schedule simulator both funnel results through this
/// function so they agree bit-for-bit.
#[inline]
pub fn wrap32(x: i64) -> i64 {
    x as i32 as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap32_wraps_like_a_register() {
        assert_eq!(wrap32(0), 0);
        assert_eq!(wrap32(i64::from(i32::MAX) + 1), i64::from(i32::MIN));
        assert_eq!(wrap32(-1), -1);
        assert_eq!(wrap32(1 << 40), 0);
        assert_eq!(wrap32((1 << 31) | 1), i64::from(i32::MIN) + 1);
    }
}
