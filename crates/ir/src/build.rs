//! A convenience builder for constructing kernels programmatically.
//!
//! The DSL front end is the usual way to produce a [`Kernel`]; the builder
//! exists for tests, synthetic workloads, and users who want to skip the
//! textual syntax.

use crate::inst::{Inst, MemRef, Operand, Vreg};
use crate::kernel::{ArrayDecl, ArrayId, ArrayKind, Carried, CarriedInit, Kernel};
use crate::op::{BinOp, Pred, UnOp};
use crate::types::{MemSpace, Ty};

/// Builds a [`Kernel`] one instruction at a time.
///
/// Instructions are appended to the *body* by default; call
/// [`KernelBuilder::in_preamble`] around setup code. Every emit method
/// returns the destination [`Vreg`] so expressions chain naturally.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    kernel: Kernel,
    next_vreg: u32,
    preamble_mode: bool,
}

impl KernelBuilder {
    /// Start building a kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            kernel: Kernel::new(name),
            next_vreg: 0,
            preamble_mode: false,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn fresh(&mut self) -> Vreg {
        let v = Vreg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    fn declare(&mut self, name: &str, ty: Ty, space: MemSpace, kind: ArrayKind) -> ArrayId {
        let id = ArrayId(u32::try_from(self.kernel.arrays.len()).expect("too many arrays"));
        self.kernel.arrays.push(ArrayDecl {
            name: name.to_owned(),
            ty,
            space,
            kind,
        });
        id
    }

    /// Declare an input array.
    pub fn array_in(&mut self, name: &str, ty: Ty, space: MemSpace) -> ArrayId {
        self.declare(name, ty, space, ArrayKind::In)
    }

    /// Declare an output array.
    pub fn array_out(&mut self, name: &str, ty: Ty, space: MemSpace) -> ArrayId {
        self.declare(name, ty, space, ArrayKind::Out)
    }

    /// Declare a read-write array.
    pub fn array_inout(&mut self, name: &str, ty: Ty, space: MemSpace) -> ArrayId {
        self.declare(name, ty, space, ArrayKind::InOut)
    }

    /// Declare a kernel-local scratch array of `len` elements.
    pub fn array_local(&mut self, name: &str, ty: Ty, space: MemSpace, len: u32) -> ArrayId {
        self.declare(name, ty, space, ArrayKind::Local(len))
    }

    /// Route subsequent emissions to the preamble (`true`) or body.
    pub fn in_preamble(&mut self, on: bool) -> &mut Self {
        self.preamble_mode = on;
        self
    }

    /// Append a raw instruction to the current section.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        if self.preamble_mode {
            self.kernel.preamble.push(inst);
        } else {
            self.kernel.body.push(inst);
        }
        self
    }

    /// Emit `dst = op(a, b)` into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let dst = self.fresh();
        self.push(Inst::Bin {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emit an add.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        self.bin(BinOp::Add, a, b)
    }

    /// Emit a subtract.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        self.bin(BinOp::Sub, a, b)
    }

    /// Emit a multiply.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        self.bin(BinOp::Mul, a, b)
    }

    /// Emit a left shift.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        self.bin(BinOp::Shl, a, b)
    }

    /// Emit an arithmetic right shift.
    pub fn ashr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        self.bin(BinOp::AShr, a, b)
    }

    /// Emit `dst = op(a)`.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> Vreg {
        let dst = self.fresh();
        self.push(Inst::Un {
            dst,
            op,
            a: a.into(),
        });
        dst
    }

    /// Emit a copy / immediate materialization.
    pub fn mov(&mut self, a: impl Into<Operand>) -> Vreg {
        self.un(UnOp::Copy, a)
    }

    /// Emit a compare producing 0/1.
    pub fn cmp(&mut self, pred: Pred, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let dst = self.fresh();
        self.push(Inst::Cmp {
            dst,
            pred,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emit a select.
    pub fn sel(
        &mut self,
        cond: impl Into<Operand>,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
    ) -> Vreg {
        let dst = self.fresh();
        self.push(Inst::Sel {
            dst,
            cond: cond.into(),
            on_true: on_true.into(),
            on_false: on_false.into(),
        });
        dst
    }

    /// Emit `min(a, b)` as a compare + select pair (the machine has no
    /// fused min/max — the paper keeps the opcode repertoire simple).
    pub fn min(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let (a, b) = (a.into(), b.into());
        let c = self.cmp(Pred::Lt, a, b);
        self.sel(c, a, b)
    }

    /// Emit `max(a, b)` as a compare + select pair.
    pub fn max(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Vreg {
        let (a, b) = (a.into(), b.into());
        let c = self.cmp(Pred::Gt, a, b);
        self.sel(c, a, b)
    }

    /// Emit an affine load `array[coeff*i + offset]`.
    pub fn load(&mut self, array: ArrayId, coeff: i64, offset: i64, ty: Ty) -> Vreg {
        let dst = self.fresh();
        self.push(Inst::Ld {
            dst,
            mem: MemRef::affine(array, coeff, offset),
            ty,
        });
        dst
    }

    /// Emit an affine store `array[coeff*i + offset] = value`.
    pub fn store(
        &mut self,
        array: ArrayId,
        coeff: i64,
        offset: i64,
        value: impl Into<Operand>,
        ty: Ty,
    ) -> &mut Self {
        self.push(Inst::St {
            mem: MemRef::affine(array, coeff, offset),
            value: value.into(),
            ty,
        })
    }

    /// Declare a loop-carried scalar. Returns the carried-in register the
    /// body should read; call with the body's end-of-iteration register.
    pub fn carry(&mut self, output: Vreg, init: CarriedInit) -> Vreg {
        let input = self.fresh();
        self.kernel.carried.push(Carried {
            input,
            output,
            init,
        });
        input
    }

    /// Declare a loop-carried scalar whose carried-in register was
    /// allocated up front (needed when the body must read the value before
    /// the producing instruction has been emitted).
    pub fn carry_into(&mut self, input: Vreg, output: Vreg, init: CarriedInit) {
        self.kernel.carried.push(Carried {
            input,
            output,
            init,
        });
    }

    /// Set how many output units one iteration produces.
    pub fn outputs_per_iter(&mut self, n: u32) -> &mut Self {
        self.kernel.outputs_per_iter = n;
        self
    }

    /// Finish and return the kernel.
    #[must_use]
    pub fn finish(self) -> Kernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn builds_a_verifiable_kernel() {
        let mut b = KernelBuilder::new("k");
        let src = b.array_in("src", Ty::U8, MemSpace::L2);
        let dst = b.array_out("dst", Ty::U8, MemSpace::L2);
        b.in_preamble(true);
        let seven = b.mov(7_i64);
        b.in_preamble(false);
        let x = b.load(src, 1, 0, Ty::U8);
        let y = b.mul(x, seven);
        let acc0 = b.fresh();
        let acc_in = b.carry(acc0, CarriedInit::Const(0));
        b.push(Inst::Bin {
            dst: acc0,
            op: BinOp::Add,
            a: Operand::Reg(acc_in),
            b: Operand::Reg(y),
        });
        b.store(dst, 1, 0, acc0, Ty::U8);
        let k = b.finish();
        verify(&k).expect("verifies");
        assert_eq!(k.body.len(), 4);
        assert_eq!(k.preamble.len(), 1);
        assert_eq!(k.carried.len(), 1);
    }

    #[test]
    fn min_max_lower_to_cmp_sel() {
        let mut b = KernelBuilder::new("m");
        let x = b.mov(3_i64);
        let y = b.mov(9_i64);
        let _ = b.min(x, y);
        let _ = b.max(x, y);
        let k = b.finish();
        let cmps = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Cmp { .. }))
            .count();
        let sels = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Sel { .. }))
            .count();
        assert_eq!((cmps, sels), (2, 2));
    }
}
