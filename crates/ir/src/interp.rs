//! Reference interpreter.
//!
//! Executes a [`Kernel`] sequentially with exact 32-bit register
//! semantics. This is the semantic baseline of the whole system: golden
//! Rust kernel implementations must match the interpreter, and the
//! scheduled VLIW code (executed by `cfp-sched`'s cycle-accurate
//! simulator) must match it too, for every architecture.

use crate::inst::{Inst, Operand, Vreg};
use crate::kernel::{ArrayKind, CarriedInit, Kernel};
use std::error::Error;
use std::fmt;

/// The memory image a kernel runs against: one `i64` vector per declared
/// array (elements are stored pre-truncated to the array's type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemImage {
    arrays: Vec<Vec<i64>>,
}

impl MemImage {
    /// Create an image for `kernel` with local arrays allocated (zeroed)
    /// at their declared length and in/out arrays empty (bind them with
    /// [`MemImage::bind`]).
    #[must_use]
    pub fn for_kernel(kernel: &Kernel) -> Self {
        let arrays = kernel
            .arrays
            .iter()
            .map(|a| match a.kind {
                ArrayKind::Local(n) => vec![0; n as usize],
                _ => Vec::new(),
            })
            .collect();
        MemImage { arrays }
    }

    /// Bind data to an array slot (index order matches the declaration
    /// order in the kernel).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn bind(&mut self, index: usize, data: Vec<i64>) -> &mut Self {
        self.arrays[index] = data;
        self
    }

    /// Read back an array (e.g. an output after a run).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn array(&self, index: usize) -> &[i64] {
        &self.arrays[index]
    }

    /// Mutable access to an array (e.g. for an external schedule
    /// executor committing stores).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn array_mut(&mut self, index: usize) -> &mut [i64] {
        &mut self.arrays[index]
    }

    /// Number of array slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether there are no array slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

/// Dynamic-execution statistics gathered by a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Total instructions executed (preamble + all iterations).
    pub executed: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Multiplies executed.
    pub muls: u64,
}

/// A runtime fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Memory access out of the bound array's range.
    OutOfBounds {
        /// Array index.
        array: usize,
        /// Attempted element index.
        index: i64,
        /// Bound length.
        len: usize,
        /// Iteration at which the fault occurred (`None` in the preamble).
        iter: Option<u64>,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds {
                array,
                index,
                len,
                iter,
            } => write!(
                f,
                "array a{array} access at element {index} out of bounds (len {len}, iter {iter:?})"
            ),
        }
    }
}

impl Error for InterpError {}

/// Executes kernels against a [`MemImage`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Interpreter;

impl Interpreter {
    /// Create an interpreter.
    #[must_use]
    pub fn new() -> Self {
        Interpreter
    }

    /// Execute only the preamble (plus carried-init latching) and return
    /// the resulting register file — the setup state a schedule executor
    /// starts from.
    ///
    /// # Errors
    /// Returns [`InterpError::OutOfBounds`] if a preamble load leaves a
    /// bound array.
    pub fn preamble_values(
        &self,
        kernel: &Kernel,
        mem: &mut MemImage,
    ) -> Result<Vec<i64>, InterpError> {
        let mut vals = vec![0_i64; kernel.vreg_count() as usize];
        let mut stats = InterpStats::default();
        for inst in &kernel.preamble {
            exec(kernel, inst, &mut vals, mem, 0, None, &mut stats)?;
        }
        for c in &kernel.carried {
            vals[c.input.index()] = match c.init {
                CarriedInit::Const(k) => crate::wrap32(k),
                CarriedInit::Preamble(v) => vals[v.index()],
            };
        }
        Ok(vals)
    }

    /// Run `kernel` for `iters` iterations against `mem`.
    ///
    /// # Errors
    /// Returns [`InterpError::OutOfBounds`] if an access leaves a bound
    /// array; the memory image may be partially updated in that case.
    pub fn run(
        &self,
        kernel: &Kernel,
        mem: &mut MemImage,
        iters: u64,
    ) -> Result<InterpStats, InterpError> {
        let mut vals = vec![0_i64; kernel.vreg_count() as usize];
        let mut stats = InterpStats::default();

        for inst in &kernel.preamble {
            exec(kernel, inst, &mut vals, mem, 0, None, &mut stats)?;
        }
        for c in &kernel.carried {
            vals[c.input.index()] = match c.init {
                CarriedInit::Const(k) => crate::wrap32(k),
                CarriedInit::Preamble(v) => vals[v.index()],
            };
        }
        for iter in 0..iters {
            for inst in &kernel.body {
                exec(
                    kernel,
                    inst,
                    &mut vals,
                    mem,
                    iter as i64,
                    Some(iter),
                    &mut stats,
                )?;
            }
            // Latch carried values for the next iteration. Two phases so
            // that a carried pair (in, out) where out reads another
            // carried input is handled order-independently.
            let next: Vec<i64> = kernel
                .carried
                .iter()
                .map(|c| vals[c.output.index()])
                .collect();
            for (c, v) in kernel.carried.iter().zip(next) {
                vals[c.input.index()] = v;
            }
        }
        Ok(stats)
    }
}

fn read(vals: &[i64], o: Operand) -> i64 {
    match o {
        Operand::Reg(Vreg(n)) => vals[n as usize],
        Operand::Imm(i) => crate::wrap32(i),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec(
    kernel: &Kernel,
    inst: &Inst,
    vals: &mut [i64],
    mem: &mut MemImage,
    iter: i64,
    iter_tag: Option<u64>,
    stats: &mut InterpStats,
) -> Result<(), InterpError> {
    stats.executed += 1;
    match *inst {
        Inst::Bin { dst, op, a, b } => {
            if op.needs_mul_unit() {
                stats.muls += 1;
            }
            vals[dst.index()] = op.eval(read(vals, a), read(vals, b));
        }
        Inst::Un { dst, op, a } => vals[dst.index()] = op.eval(read(vals, a)),
        Inst::Cmp { dst, pred, a, b } => {
            vals[dst.index()] = pred.eval(read(vals, a), read(vals, b));
        }
        Inst::Sel {
            dst,
            cond,
            on_true,
            on_false,
        } => {
            vals[dst.index()] = if read(vals, cond) != 0 {
                read(vals, on_true)
            } else {
                read(vals, on_false)
            };
        }
        Inst::Ld { dst, mem: m, ty } => {
            stats.loads += 1;
            let dynv = m.dyn_index.map_or(0, |d| read(vals, d));
            let idx = m.element_index(iter, dynv);
            let arr = &mem.arrays[m.array.index()];
            let Some(&raw) = usize::try_from(idx).ok().and_then(|i| arr.get(i)) else {
                return Err(InterpError::OutOfBounds {
                    array: m.array.index(),
                    index: idx,
                    len: arr.len(),
                    iter: iter_tag,
                });
            };
            vals[dst.index()] = ty.extend(raw);
        }
        Inst::St { mem: m, value, ty } => {
            stats.stores += 1;
            let dynv = m.dyn_index.map_or(0, |d| read(vals, d));
            let idx = m.element_index(iter, dynv);
            let v = ty.truncate(read(vals, value));
            let arr = &mut mem.arrays[m.array.index()];
            let len = arr.len();
            let Some(slot) = usize::try_from(idx).ok().and_then(|i| arr.get_mut(i)) else {
                return Err(InterpError::OutOfBounds {
                    array: m.array.index(),
                    index: idx,
                    len,
                    iter: iter_tag,
                });
            };
            *slot = v;
        }
    }
    let _ = kernel;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::kernel::CarriedInit;

    use crate::types::{MemSpace, Ty};

    /// dst[i] = 3 * src[i] + 1
    #[test]
    fn straightline_map() {
        let mut b = KernelBuilder::new("map");
        let src = b.array_in("src", Ty::U8, MemSpace::L2);
        let dst = b.array_out("dst", Ty::U8, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::U8);
        let m = b.mul(x, Operand::Imm(3));
        let r = b.add(m, Operand::Imm(1));
        b.store(dst, 1, 0, r, Ty::U8);
        let k = b.finish();
        crate::verify::verify(&k).unwrap();

        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![0, 1, 2, 100]);
        mem.bind(1, vec![0; 4]);
        let stats = Interpreter::new().run(&k, &mut mem, 4).unwrap();
        assert_eq!(mem.array(1), &[1, 4, 7, (3 * 100 + 1) & 0xff]);
        assert_eq!(stats.loads, 4);
        assert_eq!(stats.stores, 4);
        assert_eq!(stats.muls, 4);
        assert_eq!(stats.executed, 16);
    }

    /// Prefix-sum via a carried accumulator.
    #[test]
    fn carried_accumulator() {
        let mut b = KernelBuilder::new("acc");
        let src = b.array_in("src", Ty::I32, MemSpace::L2);
        let dst = b.array_out("dst", Ty::I32, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::I32);
        let sum_in = b.fresh();
        let sum_out = b.add(sum_in, x);
        b.carry_into(sum_in, sum_out, CarriedInit::Const(10));
        b.store(dst, 1, 0, sum_out, Ty::I32);
        let k = b.finish();
        crate::verify::verify(&k).unwrap();

        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![1, 2, 3, 4]);
        mem.bind(1, vec![0; 4]);
        Interpreter::new().run(&k, &mut mem, 4).unwrap();
        assert_eq!(mem.array(1), &[11, 13, 16, 20]);
    }

    /// Preamble-computed carried init and hoisted table load.
    #[test]
    fn preamble_init() {
        let mut b = KernelBuilder::new("pre");
        let table = b.array_in("tbl", Ty::I16, MemSpace::L1);
        let dst = b.array_out("dst", Ty::I32, MemSpace::L2);
        b.in_preamble(true);
        let t0 = b.load(table, 0, 2, Ty::I16);
        b.in_preamble(false);
        let s_in = b.fresh();
        let s_out = b.add(s_in, t0);
        b.carry_into(s_in, s_out, CarriedInit::Preamble(t0));
        b.store(dst, 1, 0, s_out, Ty::I32);
        let k = b.finish();
        crate::verify::verify(&k).unwrap();

        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![0, 0, 5]);
        mem.bind(1, vec![0; 3]);
        Interpreter::new().run(&k, &mut mem, 3).unwrap();
        // iter0: 5+5=10; iter1: 10+5=15; iter2: 20
        assert_eq!(mem.array(1), &[10, 15, 20]);
    }

    #[test]
    fn local_arrays_are_preallocated() {
        let mut b = KernelBuilder::new("loc");
        let scratch = b.array_local("tmp", Ty::I32, MemSpace::L2, 4);
        let dst = b.array_out("dst", Ty::I32, MemSpace::L2);
        b.store(scratch, 0, 1, Operand::Imm(42), Ty::I32);
        let x = b.load(scratch, 0, 1, Ty::I32);
        b.store(dst, 1, 0, x, Ty::I32);
        let k = b.finish();
        let mut mem = MemImage::for_kernel(&k);
        assert_eq!(mem.array(0).len(), 4);
        mem.bind(1, vec![0; 2]);
        Interpreter::new().run(&k, &mut mem, 2).unwrap();
        assert_eq!(mem.array(1), &[42, 42]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut b = KernelBuilder::new("oob");
        let src = b.array_in("src", Ty::U8, MemSpace::L2);
        let _ = b.load(src, 1, 0, Ty::U8);
        let k = b.finish();
        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![1, 2]);
        let err = Interpreter::new().run(&k, &mut mem, 3).unwrap_err();
        assert_eq!(
            err,
            InterpError::OutOfBounds {
                array: 0,
                index: 2,
                len: 2,
                iter: Some(2)
            }
        );
    }

    #[test]
    fn negative_index_is_out_of_bounds() {
        let mut b = KernelBuilder::new("neg");
        let src = b.array_in("src", Ty::U8, MemSpace::L2);
        let _ = b.load(src, 1, -1, Ty::U8);
        let k = b.finish();
        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![1, 2]);
        let err = Interpreter::new().run(&k, &mut mem, 1).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { index: -1, .. }));
    }

    #[test]
    fn dynamic_index_resolves_through_register() {
        use crate::inst::{Inst, MemRef};
        let mut b = KernelBuilder::new("dyn");
        let src = b.array_in("src", Ty::I32, MemSpace::L2);
        let dst = b.array_out("dst", Ty::I32, MemSpace::L2);
        let idx = b.mov(2_i64);
        let d = b.fresh();
        b.push(Inst::Ld {
            dst: d,
            mem: MemRef {
                array: src,
                coeff: 0,
                offset: 0,
                dyn_index: Some(Operand::Reg(idx)),
            },
            ty: Ty::I32,
        });
        b.store(dst, 1, 0, d, Ty::I32);
        let k = b.finish();
        let mut mem = MemImage::for_kernel(&k);
        mem.bind(0, vec![10, 20, 30]);
        mem.bind(1, vec![0; 1]);
        Interpreter::new().run(&k, &mut mem, 1).unwrap();
        assert_eq!(mem.array(1), &[30]);
    }
}
