//! Program-order liveness over a kernel body.
//!
//! This is the machine-independent estimate used by the optimizer's
//! heuristics (e.g. deciding whether an unroll factor is plainly
//! hopeless). The scheduler computes its own cycle-accurate pressure over
//! the final schedule; see `cfp-sched`.

use crate::inst::{Inst, Vreg};
use crate::kernel::Kernel;

/// Half-open-ish live interval in body positions: a value is live from
/// just after `start` to the end of `end` (both are body instruction
/// indices; position `body.len()` means "end of iteration").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Position of the definition (0 for values live into the body).
    pub start: usize,
    /// Whether the value enters the body live (carried input).
    pub from_entry: bool,
    /// Position of the last use (`body.len()` for values live out).
    pub end: usize,
    /// Whether the value is live across the whole loop (preamble values):
    /// these permanently occupy a register.
    pub resident: bool,
}

impl LiveRange {
    /// Whether two ranges overlap at some position.
    #[must_use]
    pub fn overlaps(&self, other: &LiveRange) -> bool {
        self.resident || other.resident || (self.start < other.end && other.start < self.end)
    }
}

/// Liveness of every vreg over one body iteration.
#[derive(Debug, Clone)]
pub struct BodyLiveness {
    ranges: Vec<Option<LiveRange>>,
    body_len: usize,
}

impl BodyLiveness {
    /// Compute liveness for `kernel`'s body.
    #[must_use]
    pub fn compute(kernel: &Kernel) -> Self {
        let n = kernel.vreg_count() as usize;
        let body_len = kernel.body.len();
        let mut ranges: Vec<Option<LiveRange>> = vec![None; n];

        // Preamble-defined values used anywhere in the body (or feeding a
        // carried init) are resident for the whole loop.
        let preamble_defs: Vec<Vreg> = kernel.preamble.iter().filter_map(Inst::def).collect();
        let mut body_uses = vec![false; n];
        for i in &kernel.body {
            for u in i.uses() {
                body_uses[u.index()] = true;
            }
        }
        for d in preamble_defs {
            if body_uses[d.index()] {
                ranges[d.index()] = Some(LiveRange {
                    start: 0,
                    end: body_len,
                    resident: true,
                    from_entry: true,
                });
            }
        }

        // Carried inputs are live from entry; carried outputs to the end.
        for c in &kernel.carried {
            ranges[c.input.index()] = Some(LiveRange {
                start: 0,
                end: 0,
                resident: false,
                from_entry: true,
            });
        }

        for (pos, inst) in kernel.body.iter().enumerate() {
            if let Some(d) = inst.def() {
                let r = ranges[d.index()].get_or_insert(LiveRange {
                    start: pos,
                    end: pos,
                    resident: false,
                    from_entry: false,
                });
                if !r.resident {
                    r.start = pos;
                }
            }
            for u in inst.uses() {
                if let Some(r) = &mut ranges[u.index()] {
                    if !r.resident {
                        r.end = r.end.max(pos);
                    }
                }
            }
        }
        for c in &kernel.carried {
            if let Some(r) = &mut ranges[c.output.index()] {
                if !r.resident {
                    r.end = body_len;
                }
            }
            // A carried input with no use still occupies its register
            // until overwritten at the iteration boundary; its range
            // already covers entry, so nothing further to extend.
        }
        BodyLiveness { ranges, body_len }
    }

    /// The live range of a vreg, if it is live at all.
    #[must_use]
    pub fn range(&self, v: Vreg) -> Option<&LiveRange> {
        self.ranges.get(v.index()).and_then(Option::as_ref)
    }

    /// Number of values live at a body position (just before instruction
    /// `pos` executes).
    #[must_use]
    pub fn pressure_at(&self, pos: usize) -> usize {
        self.ranges
            .iter()
            .flatten()
            .filter(|r| r.resident || (r.start < pos && pos <= r.end) || (r.from_entry && pos == 0))
            .count()
    }

    /// Maximum register pressure over the body (program order).
    #[must_use]
    pub fn max_pressure(&self) -> usize {
        (0..=self.body_len)
            .map(|p| self.pressure_at(p))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::kernel::CarriedInit;
    use crate::types::{MemSpace, Ty};

    #[test]
    fn simple_chain_has_low_pressure() {
        let mut b = KernelBuilder::new("chain");
        let src = b.array_in("s", Ty::U8, MemSpace::L2);
        let dst = b.array_out("d", Ty::U8, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::U8);
        let y = b.add(x, 1_i64);
        let z = b.add(y, 2_i64);
        b.store(dst, 1, 0, z, Ty::U8);
        let k = b.finish();
        let lv = BodyLiveness::compute(&k);
        assert!(lv.max_pressure() <= 2, "got {}", lv.max_pressure());
        assert_eq!(lv.range(x).unwrap().start, 0);
        assert_eq!(lv.range(x).unwrap().end, 1);
    }

    #[test]
    fn resident_preamble_values_always_count() {
        let mut b = KernelBuilder::new("res");
        let dst = b.array_out("d", Ty::I32, MemSpace::L2);
        b.in_preamble(true);
        let c0 = b.mov(5_i64);
        let c1 = b.mov(6_i64);
        b.in_preamble(false);
        let s = b.add(c0, c1);
        b.store(dst, 1, 0, s, Ty::I32);
        let k = b.finish();
        let lv = BodyLiveness::compute(&k);
        assert!(lv.range(c0).unwrap().resident);
        assert!(lv.range(c1).unwrap().resident);
        assert!(lv.max_pressure() >= 2);
    }

    #[test]
    fn unused_preamble_value_is_not_resident() {
        let mut b = KernelBuilder::new("unused");
        b.in_preamble(true);
        let c0 = b.mov(5_i64);
        b.in_preamble(false);
        let k = b.finish();
        let lv = BodyLiveness::compute(&k);
        assert!(lv.range(c0).is_none());
    }

    #[test]
    fn carried_output_lives_to_end() {
        let mut b = KernelBuilder::new("carry");
        let src = b.array_in("s", Ty::I32, MemSpace::L2);
        let x = b.load(src, 1, 0, Ty::I32);
        let s_in = b.fresh();
        let s_out = b.add(s_in, x);
        b.carry_into(s_in, s_out, CarriedInit::Const(0));
        let k = b.finish();
        let lv = BodyLiveness::compute(&k);
        let out_range = lv.range(s_out).unwrap();
        assert_eq!(out_range.end, k.body.len());
    }

    #[test]
    fn overlap_logic() {
        let a = LiveRange {
            start: 0,
            end: 2,
            resident: false,
            from_entry: false,
        };
        let b = LiveRange {
            start: 1,
            end: 3,
            resident: false,
            from_entry: false,
        };
        let c = LiveRange {
            start: 2,
            end: 4,
            resident: false,
            from_entry: false,
        };
        let r = LiveRange {
            start: 0,
            end: 0,
            resident: true,
            from_entry: true,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&r) && c.overlaps(&r));
    }
}
