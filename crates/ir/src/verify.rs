//! Structural verification of kernels.
//!
//! The verifier enforces the invariants the rest of the toolchain relies
//! on (and that the front end is supposed to establish):
//!
//! * single static assignment across preamble + body;
//! * definitions precede uses; carried inputs and preamble values are the
//!   only body live-ins;
//! * carried inputs are never redefined; carried outputs are body-defined
//!   (or equal to their input for pass-through values);
//! * the preamble is pure setup — no stores, only iteration-invariant
//!   (`coeff == 0`) affine loads;
//! * array accesses respect the declared binding kind.

use crate::inst::{Inst, Vreg};
use crate::kernel::{CarriedInit, Kernel};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A structural rule violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A register is defined more than once.
    MultipleDefs(Vreg),
    /// A register is used before (or without) a definition.
    UseBeforeDef {
        /// The offending register.
        vreg: Vreg,
        /// `"preamble"` or `"body"`.
        section: &'static str,
        /// Instruction index within the section.
        index: usize,
    },
    /// A carried input register is also defined by an instruction.
    CarriedInputRedefined(Vreg),
    /// A carried output register is not defined in the body (and differs
    /// from its input).
    CarriedOutputUndefined(Vreg),
    /// A carried init references a register the preamble does not define.
    CarriedInitUndefined(Vreg),
    /// The preamble contains a store.
    StoreInPreamble(usize),
    /// A preamble load varies with the iteration (`coeff != 0`).
    VaryingPreambleLoad(usize),
    /// An instruction references an array that was never declared.
    UnknownArray(u32),
    /// A load from a write-only array or store to a read-only array.
    AccessViolation {
        /// Array name.
        array: String,
        /// `"load"` or `"store"`.
        access: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MultipleDefs(v) => write!(f, "register {v} has multiple definitions"),
            VerifyError::UseBeforeDef {
                vreg,
                section,
                index,
            } => write!(
                f,
                "register {vreg} used before definition ({section}[{index}])"
            ),
            VerifyError::CarriedInputRedefined(v) => {
                write!(f, "carried input {v} is redefined by an instruction")
            }
            VerifyError::CarriedOutputUndefined(v) => {
                write!(f, "carried output {v} is not defined in the body")
            }
            VerifyError::CarriedInitUndefined(v) => {
                write!(
                    f,
                    "carried init register {v} is not defined in the preamble"
                )
            }
            VerifyError::StoreInPreamble(i) => write!(f, "preamble[{i}] is a store"),
            VerifyError::VaryingPreambleLoad(i) => {
                write!(f, "preamble[{i}] load varies with the iteration")
            }
            VerifyError::UnknownArray(a) => write!(f, "array a{a} is not declared"),
            VerifyError::AccessViolation { array, access } => {
                write!(f, "illegal {access} on array `{array}`")
            }
        }
    }
}

impl Error for VerifyError {}

/// Check every structural invariant; returns the first violation found.
///
/// # Errors
/// Returns a [`VerifyError`] describing the first broken invariant.
pub fn verify(kernel: &Kernel) -> Result<(), VerifyError> {
    check_arrays(kernel)?;
    check_ssa(kernel)?;
    check_carried(kernel)?;
    check_preamble(kernel)?;
    check_def_before_use(kernel)?;
    Ok(())
}

fn check_arrays(kernel: &Kernel) -> Result<(), VerifyError> {
    for inst in kernel.preamble.iter().chain(&kernel.body) {
        if let Some(m) = inst.mem() {
            let Some(decl) = kernel.arrays.get(m.array.index()) else {
                return Err(VerifyError::UnknownArray(m.array.0));
            };
            let (ok, access) = if inst.is_store() {
                (decl.kind.writable(), "store")
            } else {
                (decl.kind.readable(), "load")
            };
            if !ok {
                return Err(VerifyError::AccessViolation {
                    array: decl.name.clone(),
                    access,
                });
            }
        }
    }
    Ok(())
}

fn check_ssa(kernel: &Kernel) -> Result<(), VerifyError> {
    let mut defined = HashSet::new();
    for inst in kernel.preamble.iter().chain(&kernel.body) {
        if let Some(d) = inst.def() {
            if !defined.insert(d) {
                return Err(VerifyError::MultipleDefs(d));
            }
        }
    }
    Ok(())
}

fn check_carried(kernel: &Kernel) -> Result<(), VerifyError> {
    let defs: HashSet<Vreg> = kernel
        .preamble
        .iter()
        .chain(&kernel.body)
        .filter_map(Inst::def)
        .collect();
    let body_defs: HashSet<Vreg> = kernel.body.iter().filter_map(Inst::def).collect();
    let preamble_defs: HashSet<Vreg> = kernel.preamble.iter().filter_map(Inst::def).collect();
    for c in &kernel.carried {
        if defs.contains(&c.input) {
            return Err(VerifyError::CarriedInputRedefined(c.input));
        }
        if c.output != c.input && !body_defs.contains(&c.output) {
            return Err(VerifyError::CarriedOutputUndefined(c.output));
        }
        if let CarriedInit::Preamble(v) = c.init {
            if !preamble_defs.contains(&v) {
                return Err(VerifyError::CarriedInitUndefined(v));
            }
        }
    }
    Ok(())
}

fn check_preamble(kernel: &Kernel) -> Result<(), VerifyError> {
    for (i, inst) in kernel.preamble.iter().enumerate() {
        if inst.is_store() {
            return Err(VerifyError::StoreInPreamble(i));
        }
        if let Some(m) = inst.mem() {
            if m.coeff != 0 {
                return Err(VerifyError::VaryingPreambleLoad(i));
            }
        }
    }
    Ok(())
}

fn check_def_before_use(kernel: &Kernel) -> Result<(), VerifyError> {
    let mut avail: HashSet<Vreg> = HashSet::new();
    for (i, inst) in kernel.preamble.iter().enumerate() {
        for u in inst.uses() {
            if !avail.contains(&u) {
                return Err(VerifyError::UseBeforeDef {
                    vreg: u,
                    section: "preamble",
                    index: i,
                });
            }
        }
        if let Some(d) = inst.def() {
            avail.insert(d);
        }
    }
    for c in &kernel.carried {
        avail.insert(c.input);
    }
    for (i, inst) in kernel.body.iter().enumerate() {
        for u in inst.uses() {
            if !avail.contains(&u) {
                return Err(VerifyError::UseBeforeDef {
                    vreg: u,
                    section: "body",
                    index: i,
                });
            }
        }
        if let Some(d) = inst.def() {
            avail.insert(d);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::inst::{MemRef, Operand};
    use crate::kernel::{ArrayId, Carried};
    use crate::op::BinOp;
    use crate::types::{MemSpace, Ty};

    fn base() -> KernelBuilder {
        KernelBuilder::new("t")
    }

    #[test]
    fn empty_kernel_verifies() {
        assert_eq!(verify(&Kernel::new("e")), Ok(()));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut b = base();
        b.push(Inst::Bin {
            dst: Vreg(0),
            op: BinOp::Add,
            a: Operand::Reg(Vreg(9)),
            b: Operand::Imm(1),
        });
        let err = verify(&b.finish()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::UseBeforeDef { vreg: Vreg(9), .. }
        ));
    }

    #[test]
    fn rejects_double_def() {
        let mut b = base();
        b.push(Inst::mov(Vreg(0), 1_i64));
        b.push(Inst::mov(Vreg(0), 2_i64));
        assert_eq!(verify(&b.finish()), Err(VerifyError::MultipleDefs(Vreg(0))));
    }

    #[test]
    fn rejects_store_to_input() {
        let mut b = base();
        let a = b.array_in("src", Ty::U8, MemSpace::L2);
        b.store(a, 1, 0, 5_i64, Ty::U8);
        assert!(matches!(
            verify(&b.finish()),
            Err(VerifyError::AccessViolation {
                access: "store",
                ..
            })
        ));
    }

    #[test]
    fn rejects_load_from_output() {
        let mut b = base();
        let a = b.array_out("dst", Ty::U8, MemSpace::L2);
        let _ = b.load(a, 1, 0, Ty::U8);
        assert!(matches!(
            verify(&b.finish()),
            Err(VerifyError::AccessViolation { access: "load", .. })
        ));
    }

    #[test]
    fn rejects_unknown_array() {
        let mut b = base();
        b.push(Inst::Ld {
            dst: Vreg(0),
            mem: MemRef::affine(ArrayId(3), 1, 0),
            ty: Ty::U8,
        });
        assert_eq!(verify(&b.finish()), Err(VerifyError::UnknownArray(3)));
    }

    #[test]
    fn rejects_store_in_preamble() {
        let mut b = base();
        let a = b.array_out("dst", Ty::U8, MemSpace::L2);
        b.in_preamble(true);
        b.store(a, 0, 0, 1_i64, Ty::U8);
        assert_eq!(verify(&b.finish()), Err(VerifyError::StoreInPreamble(0)));
    }

    #[test]
    fn rejects_varying_preamble_load() {
        let mut b = base();
        let a = b.array_in("src", Ty::U8, MemSpace::L2);
        b.in_preamble(true);
        let _ = b.load(a, 1, 0, Ty::U8);
        assert_eq!(
            verify(&b.finish()),
            Err(VerifyError::VaryingPreambleLoad(0))
        );
    }

    #[test]
    fn rejects_redefined_carried_input() {
        let mut b = base();
        let x = b.mov(1_i64);
        let mut k = b.finish();
        k.carried.push(Carried {
            input: x,
            output: x,
            init: crate::kernel::CarriedInit::Const(0),
        });
        assert_eq!(verify(&k), Err(VerifyError::CarriedInputRedefined(x)));
    }

    #[test]
    fn rejects_undefined_carried_output() {
        let mut k = Kernel::new("t");
        k.carried.push(Carried {
            input: Vreg(0),
            output: Vreg(1),
            init: crate::kernel::CarriedInit::Const(0),
        });
        assert_eq!(
            verify(&k),
            Err(VerifyError::CarriedOutputUndefined(Vreg(1)))
        );
    }

    #[test]
    fn pass_through_carried_is_fine() {
        let mut k = Kernel::new("t");
        k.carried.push(Carried {
            input: Vreg(0),
            output: Vreg(0),
            init: crate::kernel::CarriedInit::Const(7),
        });
        assert_eq!(verify(&k), Ok(()));
    }

    #[test]
    fn rejects_bad_carried_init() {
        let mut k = Kernel::new("t");
        k.carried.push(Carried {
            input: Vreg(0),
            output: Vreg(0),
            init: crate::kernel::CarriedInit::Preamble(Vreg(5)),
        });
        assert_eq!(verify(&k), Err(VerifyError::CarriedInitUndefined(Vreg(5))));
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::UseBeforeDef {
            vreg: Vreg(3),
            section: "body",
            index: 2,
        };
        assert_eq!(
            e.to_string(),
            "register v3 used before definition (body[2])"
        );
    }
}
