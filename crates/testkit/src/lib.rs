//! # cfp-testkit — std-only randomness for workloads and property tests
//!
//! The repository must build and test without registry access, so the
//! usual `rand`/`proptest` stack is replaced by this tiny, fully
//! deterministic kit:
//!
//! * [`Rng`] — a SplitMix64 generator (Steele, Lea & Flood's finalizer;
//!   passes BigCrush for this size class), enough statistical quality for
//!   synthetic pixel data and fuzz inputs;
//! * [`cases`] — a loop driver for property tests: runs a closure over
//!   `n` independently-seeded generators and, on panic, reports the
//!   failing case's seed so it can be replayed in isolation.
//!
//! Everything is deterministic in the seed: workloads, fuzz corpora and
//! property cases are reproducible across runs and platforms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::RangeInclusive;

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection (Lemire); bias-free.
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        usize::try_from(self.below(bound as u64)).expect("bound fits usize")
    }

    /// Uniform `i64` in the inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, range: RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span + 1) as i64)
    }

    /// Uniform `u32` in the inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, range: RangeInclusive<u32>) -> u32 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo + u32::try_from(self.below(u64::from(hi - lo) + 1)).expect("fits")
    }

    /// Uniform choice from a non-empty slice.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len` draws from `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// Deterministic fault injection for robustness tests: a SplitMix64-keyed
/// "panic on unit `k`" hook.
///
/// A sweep that wants to prove it survives worker failures hands each
/// work unit's index to [`FaultInjector::fire`]; the injector panics on a
/// pseudo-random but fully seed-determined subset of units. Because the
/// decision is a pure function of `(seed, unit)`, a test can precompute
/// the exact set of doomed units with [`FaultInjector::tripped_among`]
/// and assert that a fault-tolerant sweep quarantines exactly those and
/// nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
    /// Trips on average once per `denominator` units.
    denominator: u64,
}

/// The panic message prefix used by [`FaultInjector::fire`]; quarantine
/// layers and panic-hook filters can key on it.
pub const INJECTED_FAULT: &str = "injected fault";

impl FaultInjector {
    /// An injector that trips, on average, one unit in `denominator`
    /// (deterministically in `seed`).
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    #[must_use]
    pub fn one_in(seed: u64, denominator: u64) -> Self {
        assert!(denominator > 0, "denominator must be positive");
        FaultInjector { seed, denominator }
    }

    /// The injector's seed (for labelling failures).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injector's trip rate denominator.
    #[must_use]
    pub fn denominator(&self) -> u64 {
        self.denominator
    }

    /// Whether unit `k` is doomed — a pure function of `(seed, k)`.
    #[must_use]
    pub fn trips(&self, unit: u64) -> bool {
        // One SplitMix64 step keyed by the unit index: equal quality to
        // the stream generator, but random access by unit.
        let mut probe = Rng::new(self.seed ^ unit.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        probe.below(self.denominator) == 0
    }

    /// The exact doomed subset of units `0..n`, ascending — what a test
    /// compares a quarantine report against.
    #[must_use]
    pub fn tripped_among(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&k| self.trips(k)).collect()
    }

    /// Panic if unit `k` is doomed; a no-op otherwise.
    ///
    /// # Panics
    /// On doomed units, with a message starting with [`INJECTED_FAULT`].
    pub fn fire(&self, unit: u64) {
        if self.trips(unit) {
            panic!("{INJECTED_FAULT}: unit {unit} (seed {})", self.seed);
        }
    }
}

/// Run `n` property cases. Case `i` receives a generator seeded with
/// `seed_base + i`; a panic inside the closure is re-raised with the
/// case seed attached, so the failure replays as
/// `f(&mut Rng::new(reported_seed))`.
pub fn cases(seed_base: u64, n: u64, f: impl Fn(&mut Rng) + std::panic::RefUnwindSafe) {
    for i in 0..n {
        let seed = seed_base.wrapping_add(i);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property case failed (replay seed {seed}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = Rng::new(7).vec_of(8, Rng::next_u64);
        let b: Vec<u64> = Rng::new(7).vec_of(8, Rng::next_u64);
        let c: Vec<u64> = Rng::new(8).vec_of(8, Rng::next_u64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range_i64(-3..=6);
            assert!((-3..=6).contains(&v));
            seen[usize::try_from(v + 3).unwrap()] = true;
            let u = rng.range_u32(5..=5);
            assert_eq!(u, 5);
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(1);
        let mut counts = [0_u32; 4];
        for _ in 0..4000 {
            counts[usize::try_from(rng.below(4)).unwrap()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn fault_injector_is_deterministic_and_seed_sensitive() {
        let a = FaultInjector::one_in(7, 4);
        let b = FaultInjector::one_in(7, 4);
        let c = FaultInjector::one_in(8, 4);
        assert_eq!(a.tripped_among(200), b.tripped_among(200));
        assert_ne!(a.tripped_among(200), c.tripped_among(200));
        // Roughly 1-in-4 of 200 units trip; seed quality keeps it loose.
        let n = a.tripped_among(200).len();
        assert!((20..=90).contains(&n), "tripped {n}/200");
        for k in a.tripped_among(200) {
            assert!(a.trips(k));
        }
    }

    #[test]
    fn fault_injector_fires_exactly_on_doomed_units() {
        let inj = FaultInjector::one_in(1234, 3);
        for k in 0..100 {
            let fired = std::panic::catch_unwind(|| inj.fire(k)).is_err();
            assert_eq!(fired, inj.trips(k), "unit {k}");
        }
    }

    #[test]
    fn cases_reports_the_failing_seed() {
        let caught = std::panic::catch_unwind(|| {
            cases(100, 20, |rng| {
                assert!(rng.next_u64() % 7 != 3, "boom");
            });
        });
        let payload = caught.expect_err("some case must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("replay seed"), "{msg}");
    }
}
