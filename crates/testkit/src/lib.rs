//! # cfp-testkit — std-only randomness for workloads and property tests
//!
//! The repository must build and test without registry access, so the
//! usual `rand`/`proptest` stack is replaced by this tiny, fully
//! deterministic kit:
//!
//! * [`Rng`] — a SplitMix64 generator (Steele, Lea & Flood's finalizer;
//!   passes BigCrush for this size class), enough statistical quality for
//!   synthetic pixel data and fuzz inputs;
//! * [`cases`] — a loop driver for property tests: runs a closure over
//!   `n` independently-seeded generators and, on panic, reports the
//!   failing case's seed so it can be replayed in isolation.
//!
//! Everything is deterministic in the seed: workloads, fuzz corpora and
//! property cases are reproducible across runs and platforms.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::RangeInclusive;

/// A deterministic SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift rejection (Lemire); bias-free.
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        usize::try_from(self.below(bound as u64)).expect("bound fits usize")
    }

    /// Uniform `i64` in the inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, range: RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span + 1) as i64)
    }

    /// Uniform `u32` in the inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, range: RangeInclusive<u32>) -> u32 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo + u32::try_from(self.below(u64::from(hi - lo) + 1)).expect("fits")
    }

    /// Uniform choice from a non-empty slice.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len` draws from `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// What a tripped [`FaultInjector`] does to the unit it dooms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`INJECTED_FAULT`]-prefixed message (the classic
    /// quarantine exercise).
    Panic,
    /// Sleep for the given number of milliseconds — a latency stall, for
    /// proving wall-clock watchdogs kill stalled work. Results are
    /// unchanged; only time passes.
    Stall(u64),
    /// Mark the unit for a connection drop. [`FaultInjector::fire`] is a
    /// no-op for this kind — transport layers consult
    /// [`FaultInjector::drops`] and sever the stream themselves.
    Drop,
}

impl FaultKind {
    /// Stable one-word token (journals and fingerprints key on it).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall(_) => "stall",
            FaultKind::Drop => "drop",
        }
    }
}

/// Deterministic fault injection for robustness tests: a SplitMix64-keyed
/// "panic on unit `k`" hook, extended with latency stalls and connection
/// drops (see [`FaultKind`]).
///
/// A sweep that wants to prove it survives worker failures hands each
/// work unit's index to [`FaultInjector::fire`]; the injector panics on a
/// pseudo-random but fully seed-determined subset of units. Because the
/// decision is a pure function of `(seed, unit)`, a test can precompute
/// the exact set of doomed units with [`FaultInjector::tripped_among`]
/// and assert that a fault-tolerant sweep quarantines exactly those and
/// nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    seed: u64,
    /// Trips on average once per `denominator` units.
    denominator: u64,
    kind: FaultKind,
}

/// The panic message prefix used by [`FaultInjector::fire`]; quarantine
/// layers and panic-hook filters can key on it.
pub const INJECTED_FAULT: &str = "injected fault";

impl FaultInjector {
    /// An injector that trips, on average, one unit in `denominator`
    /// (deterministically in `seed`).
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    #[must_use]
    pub fn one_in(seed: u64, denominator: u64) -> Self {
        assert!(denominator > 0, "denominator must be positive");
        FaultInjector {
            seed,
            denominator,
            kind: FaultKind::Panic,
        }
    }

    /// An injector whose doomed units stall for `millis` instead of
    /// panicking. Same trip set as [`FaultInjector::one_in`] with the
    /// same seed and denominator.
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    #[must_use]
    pub fn stalling(seed: u64, denominator: u64, millis: u64) -> Self {
        FaultInjector {
            kind: FaultKind::Stall(millis),
            ..Self::one_in(seed, denominator)
        }
    }

    /// An injector whose doomed units mark a connection for dropping
    /// (consult [`FaultInjector::drops`]; [`FaultInjector::fire`] does
    /// nothing for this kind).
    ///
    /// # Panics
    /// Panics if `denominator` is zero.
    #[must_use]
    pub fn dropping(seed: u64, denominator: u64) -> Self {
        FaultInjector {
            kind: FaultKind::Drop,
            ..Self::one_in(seed, denominator)
        }
    }

    /// What tripping does.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The injector's seed (for labelling failures).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injector's trip rate denominator.
    #[must_use]
    pub fn denominator(&self) -> u64 {
        self.denominator
    }

    /// Whether unit `k` is doomed — a pure function of `(seed, k)`.
    #[must_use]
    pub fn trips(&self, unit: u64) -> bool {
        // One SplitMix64 step keyed by the unit index: equal quality to
        // the stream generator, but random access by unit.
        let mut probe = Rng::new(self.seed ^ unit.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        probe.below(self.denominator) == 0
    }

    /// The exact doomed subset of units `0..n`, ascending — what a test
    /// compares a quarantine report against.
    #[must_use]
    pub fn tripped_among(&self, n: u64) -> Vec<u64> {
        (0..n).filter(|&k| self.trips(k)).collect()
    }

    /// Act on unit `k` if it is doomed; a no-op otherwise. What "act"
    /// means depends on the kind: [`FaultKind::Panic`] panics,
    /// [`FaultKind::Stall`] sleeps, [`FaultKind::Drop`] does nothing
    /// here (the transport layer owns the drop).
    ///
    /// # Panics
    /// On doomed units of a panicking injector, with a message starting
    /// with [`INJECTED_FAULT`].
    pub fn fire(&self, unit: u64) {
        if !self.trips(unit) {
            return;
        }
        match self.kind {
            FaultKind::Panic => panic!("{INJECTED_FAULT}: unit {unit} (seed {})", self.seed),
            FaultKind::Stall(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            FaultKind::Drop => {}
        }
    }

    /// Whether a transport layer should sever its stream at unit `k`:
    /// true exactly when this is a dropping injector and `k` trips.
    #[must_use]
    pub fn drops(&self, unit: u64) -> bool {
        matches!(self.kind, FaultKind::Drop) && self.trips(unit)
    }

    /// The stall duration unit `k` is doomed to, if this is a stalling
    /// injector and `k` trips.
    #[must_use]
    pub fn stalls(&self, unit: u64) -> Option<std::time::Duration> {
        match self.kind {
            FaultKind::Stall(ms) if self.trips(unit) => Some(std::time::Duration::from_millis(ms)),
            _ => None,
        }
    }
}

/// Run `n` property cases. Case `i` receives a generator seeded with
/// `seed_base + i`; a panic inside the closure is re-raised with the
/// case seed attached, so the failure replays as
/// `f(&mut Rng::new(reported_seed))`.
pub fn cases(seed_base: u64, n: u64, f: impl Fn(&mut Rng) + std::panic::RefUnwindSafe) {
    for i in 0..n {
        let seed = seed_base.wrapping_add(i);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property case failed (replay seed {seed}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = Rng::new(7).vec_of(8, Rng::next_u64);
        let b: Vec<u64> = Rng::new(7).vec_of(8, Rng::next_u64);
        let c: Vec<u64> = Rng::new(8).vec_of(8, Rng::next_u64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::new(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range_i64(-3..=6);
            assert!((-3..=6).contains(&v));
            seen[usize::try_from(v + 3).unwrap()] = true;
            let u = rng.range_u32(5..=5);
            assert_eq!(u, 5);
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(1);
        let mut counts = [0_u32; 4];
        for _ in 0..4000 {
            counts[usize::try_from(rng.below(4)).unwrap()] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn fault_injector_is_deterministic_and_seed_sensitive() {
        let a = FaultInjector::one_in(7, 4);
        let b = FaultInjector::one_in(7, 4);
        let c = FaultInjector::one_in(8, 4);
        assert_eq!(a.tripped_among(200), b.tripped_among(200));
        assert_ne!(a.tripped_among(200), c.tripped_among(200));
        // Roughly 1-in-4 of 200 units trip; seed quality keeps it loose.
        let n = a.tripped_among(200).len();
        assert!((20..=90).contains(&n), "tripped {n}/200");
        for k in a.tripped_among(200) {
            assert!(a.trips(k));
        }
    }

    #[test]
    fn fault_injector_fires_exactly_on_doomed_units() {
        let inj = FaultInjector::one_in(1234, 3);
        for k in 0..100 {
            let fired = std::panic::catch_unwind(|| inj.fire(k)).is_err();
            assert_eq!(fired, inj.trips(k), "unit {k}");
        }
    }

    #[test]
    fn stall_and_drop_kinds_share_the_panic_trip_set_but_never_panic() {
        let panicky = FaultInjector::one_in(99, 5);
        let staller = FaultInjector::stalling(99, 5, 0);
        let dropper = FaultInjector::dropping(99, 5);
        assert_eq!(panicky.tripped_among(100), staller.tripped_among(100));
        assert_eq!(panicky.tripped_among(100), dropper.tripped_among(100));
        for k in 0..100 {
            // A zero-millisecond stall is observable only as "did not
            // panic"; a drop is observable only through `drops`.
            assert!(std::panic::catch_unwind(|| staller.fire(k)).is_ok());
            assert!(std::panic::catch_unwind(|| dropper.fire(k)).is_ok());
            assert_eq!(dropper.drops(k), dropper.trips(k), "unit {k}");
            assert!(!panicky.drops(k) && !staller.drops(k));
            assert_eq!(staller.stalls(k).is_some(), staller.trips(k));
            assert_eq!(panicky.stalls(k), None);
        }
        assert_eq!(staller.kind(), FaultKind::Stall(0));
        assert_eq!(FaultKind::Stall(7).token(), "stall");
        assert_eq!(FaultKind::Drop.token(), "drop");
        assert_eq!(FaultKind::Panic.token(), "panic");
    }

    #[test]
    fn cases_reports_the_failing_seed() {
        let caught = std::panic::catch_unwind(|| {
            cases(100, 20, |rng| {
                assert!(rng.next_u64() % 7 != 3, "boom");
            });
        });
        let payload = caught.expect_err("some case must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("replay seed"), "{msg}");
    }
}
