//! Criterion benches for the two executors: the reference interpreter
//! and the cycle-accurate schedule simulator, on real benchmark
//! workloads.

use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, MachineResources};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("execution");
    g.sample_size(20);
    let n = 16_u64;
    for b in [Benchmark::D, Benchmark::F, Benchmark::H] {
        let workload = b.workload(n, 7);
        g.bench_with_input(BenchmarkId::new("interpreter", b), &workload, |bench, w| {
            bench.iter(|| {
                let mut mem = w.image();
                cfp_ir::Interpreter::new()
                    .run(black_box(&w.kernel), &mut mem, w.iters)
                    .unwrap();
                mem
            });
        });

        let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
        let machine = MachineResources::from_spec(&spec);
        let result = cfp_sched::compile(&workload.kernel, &machine);
        g.bench_with_input(BenchmarkId::new("simulator", b), &workload, |bench, w| {
            bench.iter(|| {
                let mut mem = w.image();
                cfp_sched::simulate(&w.kernel, &result, &machine, &mut mem, w.iters).unwrap();
                mem
            });
        });

        g.bench_with_input(BenchmarkId::new("golden", b), &workload, |bench, w| {
            bench.iter(|| {
                let mut mem = w.image();
                cfp_kernels::golden::run(b, &mut mem, w.iters);
                mem
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
