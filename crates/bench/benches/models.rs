//! Criterion benches for the analytic models: cost, cycle time, the
//! least-squares calibration, and design-space enumeration.

use cfp_machine::{calibrate, ArchSpec, CostModel, CycleModel, DesignSpace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let cost = CostModel::paper_calibrated();
    let cycle = CycleModel::paper_calibrated();
    let spec = ArchSpec::new(16, 8, 512, 4, 4, 4).unwrap();

    c.bench_function("cost_model/evaluate", |b| {
        b.iter(|| cost.cost(black_box(&spec)));
    });
    c.bench_function("cycle_model/evaluate", |b| {
        b.iter(|| cycle.derate(black_box(&spec)));
    });
    c.bench_function("calibrate/fit_cost_model", |b| {
        b.iter(calibrate::fit_cost_model);
    });
    c.bench_function("calibrate/fit_cycle_model", |b| {
        b.iter(calibrate::fit_cycle_model);
    });
    c.bench_function("design_space/enumerate_and_expand", |b| {
        b.iter(|| DesignSpace::paper().all_arrangements());
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
