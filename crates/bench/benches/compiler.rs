//! Criterion benches for the retargetable VLIW compiler: front end,
//! optimizer, and back end throughput on the paper's kernels. The paper's
//! compiler took ~28 s per benchmark compilation (Table 3); these measure
//! what our in-process retargeting costs instead.

use cfp_kernels::Benchmark;
use cfp_machine::{ArchSpec, MachineResources};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for b in [Benchmark::D, Benchmark::F, Benchmark::C] {
        g.bench_with_input(BenchmarkId::new("compile_kernel", b), &b, |bench, &b| {
            bench.iter(|| cfp_frontend::compile_kernel(black_box(b.source()), b.consts()).unwrap());
        });
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    for b in [Benchmark::A, Benchmark::C, Benchmark::H] {
        let kernel = b.kernel();
        g.bench_with_input(BenchmarkId::new("optimize", b), &kernel, |bench, k| {
            bench.iter(|| {
                let mut kk = k.clone();
                cfp_opt::optimize(&mut kk);
                kk
            });
        });
        let mut opt = kernel.clone();
        cfp_opt::optimize(&mut opt);
        g.bench_with_input(BenchmarkId::new("unroll_x4", b), &opt, |bench, k| {
            bench.iter(|| cfp_opt::unroll::unroll(black_box(k), 4));
        });
    }
    g.finish();
}

fn bench_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend");
    g.sample_size(20);
    let archs = [
        ("baseline", ArchSpec::baseline()),
        ("wide", ArchSpec::new(16, 8, 512, 4, 4, 1).unwrap()),
        ("clustered", ArchSpec::new(16, 8, 512, 4, 4, 4).unwrap()),
    ];
    for b in [Benchmark::D, Benchmark::A, Benchmark::H] {
        let mut kernel = b.kernel();
        cfp_opt::optimize(&mut kernel);
        let kernel = cfp_opt::unroll::unroll(&kernel, 2);
        for (name, spec) in &archs {
            let machine = MachineResources::from_spec(spec);
            g.bench_with_input(
                BenchmarkId::new(format!("schedule_{b}_x2"), name),
                &machine,
                |bench, m| {
                    bench.iter(|| cfp_sched::compile(black_box(&kernel), m));
                },
            );
        }
    }
    g.finish();
}

fn bench_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("codegen");
    g.sample_size(20);
    let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
    let machine = MachineResources::from_spec(&spec);
    for b in [Benchmark::D, Benchmark::H] {
        let mut kernel = b.kernel();
        cfp_opt::optimize(&mut kernel);
        let result = cfp_sched::compile(&kernel, &machine);
        g.bench_with_input(BenchmarkId::new("encode", b), &result, |bench, r| {
            bench.iter(|| {
                cfp_sched::encode(black_box(&r.assignment), &r.schedule, &machine).unwrap()
            });
        });
        let ddg = cfp_sched::Ddg::build(&result.assignment.code);
        g.bench_with_input(
            BenchmarkId::new("modulo_schedule", b),
            &result,
            |bench, r| {
                bench.iter(|| {
                    cfp_sched::modulo_schedule(black_box(&r.assignment), &ddg, &machine, r.length)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_optimizer,
    bench_backend,
    bench_codegen
);
criterion_main!(benches);
