//! Criterion benches for the exploration layer: a single architecture
//! evaluation (the codesign loop's inner step) and the selection and
//! frontier machinery over a prebuilt exploration.

use cfp_dse::{select, CompileCache, Exploration, ExploreConfig, PlanCache, Range};
use cfp_kernels::Benchmark;
use cfp_machine::ArchSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exploration(c: &mut Criterion) {
    let mut g = c.benchmark_group("exploration");
    g.sample_size(10);

    let cache = PlanCache::build(&[Benchmark::D, Benchmark::H], &[64, 256], &[1, 2, 4]);
    for b in [Benchmark::D, Benchmark::H] {
        let spec = ArchSpec::new(8, 4, 256, 2, 4, 2).unwrap();
        g.bench_with_input(BenchmarkId::new("evaluate", b), &spec, |bench, s| {
            bench.iter(|| cfp_dse::evaluate(black_box(s), b, &cache));
        });
        // The memoized path on a warm cache: what every architecture
        // after the first in a signature class pays.
        let memo = CompileCache::new();
        cfp_dse::evaluate_cached(&spec, b, &cache, &memo);
        g.bench_with_input(
            BenchmarkId::new("evaluate_cached/warm", b),
            &spec,
            |bench, s| {
                bench.iter(|| cfp_dse::evaluate_cached(black_box(s), b, &cache, &memo));
            },
        );
    }

    // The whole smoke exploration, with and without compilation reuse —
    // the ratio is the headline of `bench_explore`/BENCH_explore.json.
    for reuse in [false, true] {
        let mut cfg = ExploreConfig::smoke();
        cfg.reuse = reuse;
        let label = if reuse {
            "run/reuse_on"
        } else {
            "run/reuse_off"
        };
        g.bench_function(label, |b| {
            b.iter(|| Exploration::run(black_box(&cfg)));
        });
    }

    let ex = Exploration::run(&ExploreConfig::smoke());
    g.bench_function("select/range_10pct", |b| {
        b.iter(|| select(black_box(&ex), 0, 10.0, Range::Fraction(0.10)));
    });
    g.bench_function("pareto/scatter_and_frontier", |b| {
        b.iter(|| {
            let pts = cfp_dse::scatter(black_box(&ex), 0);
            cfp_dse::frontier(&pts)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
