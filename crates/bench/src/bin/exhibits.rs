//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p cfp-bench --bin exhibits -- all
//! cargo run --release -p cfp-bench --bin exhibits -- table8 table9 --fast
//! cargo run --release -p cfp-bench --bin exhibits -- figure3 --csv
//! ```
//!
//! `--fast` explores a 1-in-8 sample of the design space (same shapes,
//! seconds instead of minutes); `--csv` emits the figures' raw data;
//! `--save FILE` persists the exploration and `--load FILE` replays a
//! saved one instead of recomputing (see `cfp_dse::io`).
//!
//! `--checkpoint FILE` journals completed `(architecture, benchmark)`
//! units to FILE as the exploration runs; add `--resume` to pick up an
//! interrupted run from the same journal (bit-identical to an
//! uninterrupted run — see `cfp_dse::checkpoint`).
//!
//! `--trace-out FILE` writes every exploration span (plan build,
//! per-stage compiler spans, per-unit summaries) as JSONL to FILE;
//! `--trace-summary` prints the aggregated per-stage latency histogram
//! and per-architecture "why it lost" attribution tables. Results are
//! bit-identical with tracing on or off (see `cfp_obs`).

use cfp_bench::exhibits;
use cfp_dse::Checkpoint;
use cfp_kernels::Benchmark;

const USAGE: &str =
    "usage: exhibits [table1..table10 | figure1..figure4 | search | correction | codesize | pipelining | priority | spill | all]... [--fast] [--csv] [--extended] [--mdes-dump SPEC] [--save FILE] [--load FILE] [--checkpoint FILE [--resume]] [--trace-out FILE] [--trace-summary]";

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv = args.iter().any(|a| a == "--csv");
    let save = value_after(&args, "--save");
    let load = value_after(&args, "--load");
    let resume = args.iter().any(|a| a == "--resume");
    let checkpoint = value_after(&args, "--checkpoint").map(|path| {
        if resume {
            Checkpoint::resume(path)
        } else {
            Checkpoint::new(path)
        }
    });
    if resume && checkpoint.is_none() {
        eprintln!("error: --resume needs --checkpoint FILE\n{USAGE}");
        std::process::exit(2);
    }
    // `--trace-out FILE` drains the exploration's spans to a JSONL
    // trace; `--trace-summary` prints the per-stage latency and
    // per-architecture attribution tables instead of (or as well as)
    // the raw lines.
    let trace_out = value_after(&args, "--trace-out");
    let trace_summary = args.iter().any(|a| a == "--trace-summary");
    let recorder =
        (trace_out.is_some() || trace_summary).then(cfp_obs::JsonlRecorder::new);

    // `--mdes-dump SPEC`: print the derived machine description and be
    // done (composable with other exhibits, but needs no exploration).
    let mdes_dump = value_after(&args, "--mdes-dump").map(|s| {
        let spec = cfp_machine::ArchSpec::parse(&s).unwrap_or_else(|e| {
            eprintln!("error: bad spec `{s}`: {e}\n{USAGE}");
            std::process::exit(2);
        });
        exhibits::mdes_dump(&spec)
    });
    // `--extended`: explore the pipelined-L2 extended space too.
    let extended = args.iter().any(|a| a == "--extended");

    let mut skip_next = false;
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--save"
                || *a == "--load"
                || *a == "--checkpoint"
                || *a == "--mdes-dump"
                || *a == "--trace-out"
            {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .collect();
    if let Some(dump) = &mdes_dump {
        println!("{dump}\n");
    }
    if wanted.is_empty() && (mdes_dump.is_some() || extended) {
        // The flag-only invocations stand alone; don't pull in `all`.
        if extended {
            println!("{}\n", exhibits::extended_axis(&exhibits::extended_exploration(fast)));
        }
        return;
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = (1..=10)
            .map(|n| format!("table{n}"))
            .chain((1..=4).map(|n| format!("figure{n}")))
            .chain([
                "search".to_owned(),
                "correction".to_owned(),
                "codesize".to_owned(),
                "pipelining".to_owned(),
                "priority".to_owned(),
                "spill".to_owned(),
            ])
            .collect();
    }
    if extended && !wanted.iter().any(|w| w == "extended") {
        wanted.push("extended".to_owned());
    }

    let needs_exploration = wanted.iter().any(|w| {
        matches!(
            w.as_str(),
            "table3"
                | "table8"
                | "table9"
                | "table10"
                | "figure3"
                | "figure4"
                | "search"
                | "correction"
        )
    });
    let exploration = if let Some(path) = &load {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(1);
        });
        Some(cfp_dse::from_csv(&text).unwrap_or_else(|e| {
            eprintln!("error: `{path}` is not a saved exploration: {e}");
            std::process::exit(1);
        }))
    } else if needs_exploration {
        eprintln!(
            "running the {} exploration (use --fast for a sampled space)...",
            if fast { "sampled" } else { "full 192-point" }
        );
        let rec: &dyn cfp_obs::Recorder = recorder
            .as_ref()
            .map_or(&cfp_obs::NULL, |r| r as &dyn cfp_obs::Recorder);
        match exhibits::run_exploration_traced(fast, checkpoint, rec) {
            Ok(ex) => {
                if ex.stats.resumed_units > 0 {
                    eprintln!(
                        "resumed {} completed units from the checkpoint journal",
                        ex.stats.resumed_units
                    );
                }
                Some(ex)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    } else {
        if recorder.is_some() {
            eprintln!(
                "note: --trace-out/--trace-summary need an exploration to trace; \
                 the requested exhibits{} run none",
                if load.is_some() { " (--load replays)" } else { "" }
            );
        }
        None
    };
    if let Some(rec) = &recorder {
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("error: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
            eprintln!("trace written to {path} ({} events)", rec.len());
        }
        if trace_summary && !rec.is_empty() {
            let summary = cfp_obs::summary::TraceSummary::from_events(&rec.events());
            println!("{}\n", summary.render());
        }
    }
    if let (Some(path), Some(ex)) = (&save, &exploration) {
        if let Err(e) = std::fs::write(path, cfp_dse::to_csv(ex)) {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("exploration saved to {path}");
    }
    let ex = exploration.as_ref();

    for w in &wanted {
        let out = match w.as_str() {
            "table1" => exhibits::table1(),
            "table2" => exhibits::table2(),
            "table3" => exhibits::table3(ex.expect("explored")),
            "table4" => exhibits::table4(),
            "table5" => exhibits::table5(),
            "table6" => exhibits::table6(),
            "table7" => exhibits::table7(),
            "table8" => exhibits::table8_10(ex.expect("explored"), 5.0),
            "table9" => exhibits::table8_10(ex.expect("explored"), 10.0),
            "table10" => exhibits::table8_10(ex.expect("explored"), 15.0),
            "search" => exhibits::extension_search(ex.expect("explored")),
            "correction" => exhibits::extension_correction(ex.expect("explored")),
            "codesize" => exhibits::extension_codesize(),
            "pipelining" => exhibits::extension_pipelining(),
            "priority" => exhibits::extension_priority(),
            "spill" => exhibits::extension_spill(),
            "extended" => exhibits::extended_axis(&exhibits::extended_exploration(fast)),
            "figure1" => exhibits::figure1(),
            "figure2" => exhibits::figure2(),
            "figure3" => {
                let ex = ex.expect("explored");
                if csv {
                    exhibits::figure_csv(ex, &Benchmark::INDIVIDUAL)
                } else {
                    exhibits::figure(
                        ex,
                        &Benchmark::INDIVIDUAL,
                        "Figure 3: cost/speedup scatter, individual benchmarks",
                    )
                }
            }
            "figure4" => {
                let ex = ex.expect("explored");
                if csv {
                    exhibits::figure_csv(ex, &Benchmark::JAMMED)
                } else {
                    exhibits::figure(
                        ex,
                        &Benchmark::JAMMED,
                        "Figure 4: cost/speedup scatter, jammed benchmarks",
                    )
                }
            }
            other => {
                eprintln!("unknown exhibit `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        };
        println!("{out}\n");
    }
}
