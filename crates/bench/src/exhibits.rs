//! The paper's exhibits, regenerated from this repository.
//!
//! Every table and figure of the evaluation has a function here; see
//! `EXPERIMENTS.md` at the repository root for the paper-versus-measured
//! record produced from these.

use cfp_dse::report::TextTable;
use cfp_dse::{Checkpoint, Exploration, ExploreConfig, ExploreError};
use cfp_kernels::Benchmark;
use cfp_machine::{paper, ArchSpec, CostModel, CycleModel, DesignSpace};

/// Table 1: the individual benchmarks.
#[must_use]
pub fn table1() -> String {
    let mut t = TextTable::new(["Benchmark", "Description"]);
    for b in Benchmark::ALL.into_iter().filter(|b| b.letter().len() == 1) {
        t.row([b.letter().to_owned(), b.description().to_owned()]);
    }
    format!("Table 1: the individual benchmarks\n{t}")
}

/// Table 2: the jammed benchmarks.
#[must_use]
pub fn table2() -> String {
    let mut t = TextTable::new(["Benchmark", "Description"]);
    for b in Benchmark::JAMMED {
        t.row([b.letter().to_owned(), b.description().to_owned()]);
    }
    format!("Table 2: the jammed benchmarks\n{t}")
}

/// Table 3: experiment computation time (ours, next to the paper's).
#[must_use]
pub fn table3(ex: &Exploration) -> String {
    let per_arch = ex.stats.wall.as_secs_f64() / ex.stats.architectures.max(1) as f64;
    let per_comp = ex.stats.wall.as_secs_f64() / ex.stats.compilations.max(1) as f64;
    let mut t = TextTable::new(["quantity", "this run", "paper (HP 9000/770)"]);
    t.row([
        "# runs (compilations)".to_owned(),
        ex.stats.compilations.to_string(),
        "5730".to_owned(),
    ]);
    t.row([
        "# architectures".to_owned(),
        ex.stats.architectures.to_string(),
        "191 (+clustering values)".to_owned(),
    ]);
    t.row([
        "runtime per architecture".to_owned(),
        format!("{:.2}s", per_arch),
        "897s (15 m)".to_owned(),
    ]);
    t.row([
        "compiler time per benchmark".to_owned(),
        format!("{:.3}s", per_comp),
        "28s".to_owned(),
    ]);
    t.row([
        "compiler retarget time".to_owned(),
        "0s (runtime machine model)".to_owned(),
        "50s (relink)".to_owned(),
    ]);
    t.row([
        "total time".to_owned(),
        format!("{:.0}s", ex.stats.wall.as_secs_f64()),
        "171449s (48 h)".to_owned(),
    ]);
    // Compilation-reuse accounting: "# runs" above counts *logical*
    // compilations (one per architecture x benchmark x unroll, matching
    // the paper's methodology); the rows below show how much physical
    // scheduling work the memo collapsed them into.
    t.row([
        "  of which cache hits".to_owned(),
        ex.stats.cache_hits.to_string(),
        "n/a (no reuse)".to_owned(),
    ]);
    t.row([
        "  unique schedules".to_owned(),
        ex.stats.unique_schedules.to_string(),
        "= # runs".to_owned(),
    ]);
    t.row([
        "  unique plans (opt+unroll)".to_owned(),
        ex.stats.unique_plans.to_string(),
        "n/a".to_owned(),
    ]);
    // 0 unless an ablation driver ran the modulo scheduler and summed
    // its II attempts in; the sweep itself is the loop-barrier line.
    t.row([
        "  modulo II attempts".to_owned(),
        ex.stats.ii_attempts.to_string(),
        "n/a (no pipelining)".to_owned(),
    ]);
    t.row([
        "  planning stage".to_owned(),
        format!("{:.2}s", ex.stats.plan_wall.as_secs_f64()),
        "-".to_owned(),
    ]);
    t.row([
        "  evaluation stage".to_owned(),
        format!("{:.2}s", ex.stats.eval_wall.as_secs_f64()),
        "-".to_owned(),
    ]);
    // Robustness accounting: quarantined units mean degraded coverage,
    // and the exhibit says so rather than hiding it in a log.
    t.row([
        "  quarantined units".to_owned(),
        ex.stats.failed_units.to_string(),
        "n/a (a crash lost the run)".to_owned(),
    ]);
    t.row([
        "    of which fuel-exhausted".to_owned(),
        ex.stats.fuel_exhausted.to_string(),
        "n/a".to_owned(),
    ]);
    t.row([
        "  units resumed from checkpoint".to_owned(),
        ex.stats.resumed_units.to_string(),
        "n/a".to_owned(),
    ]);
    format!("Table 3: experiment computation time\n{t}")
}

/// Table 4: the architecture parameters (inventory).
#[must_use]
pub fn table4() -> String {
    let mut t = TextTable::new(["Parameter", "Range in this reproduction"]);
    t.row([
        "Clusters",
        "1..16 (dividing ALUs/registers, >=16 regs each)",
    ]);
    t.row([
        "IALUs",
        "1, 2, 4, 8, 16 (latency 1; IMUL 2 cycles pipelined)",
    ]);
    t.row([
        "ALU repertoire",
        "integer only; 1/4..1/2 of ALUs IMUL-capable, >=1",
    ]);
    t.row(["Register sizes", "64, 128, 256, 512 total"]);
    t.row([
        "Memory system",
        "1 L1 port (3cy non-pipelined); 1..4 L2 ports, 4 or 8 cy",
    ]);
    format!("Table 4: the architecture parameters\n{t}")
}

/// Table 5: the derived parameters.
#[must_use]
pub fn table5() -> String {
    let mut t = TextTable::new(["Parameter", "Derivation"]);
    t.row(["Register ports", "p = 3*ALUs + 2*memory ports, per cluster"]);
    t.row([
        "Connectivity",
        "explicit inter-cluster moves, 1 cycle, dest ALU slot",
    ]);
    t.row([
        "Cycle speed",
        "T(p) = alpha + beta*p^2, fitted to paper Table 7",
    ]);
    format!("Table 5: the derived parameter settings\n{t}")
}

/// Table 6: example architecture costs, ours against the paper's.
#[must_use]
pub fn table6() -> String {
    let model = CostModel::paper_calibrated();
    let mut t = TextTable::new([
        "IALU", "IMUL", "L2MEM", "REGS", "Clusters", "paper", "model", "err",
    ]);
    for (spec, paper_cost) in paper::table6() {
        let c = model.cost(&spec);
        t.row([
            spec.alus.to_string(),
            spec.muls.to_string(),
            spec.l2_ports.to_string(),
            spec.regs.to_string(),
            spec.clusters.to_string(),
            format!("{paper_cost:.1}"),
            format!("{c:.1}"),
            format!("{:+.0}%", (c - paper_cost) / paper_cost * 100.0),
        ]);
    }
    let (k2, k3, k4, k5, k6) = model.coefficients();
    format!(
        "Table 6: example architecture costs (calibrated k2={k2:.2e} k3={k3:.2e} \
         k4={k4:.2e} k5={k5:.2e} k6={k6:.2e})\n{t}"
    )
}

/// Table 7: cycle-speed derating factors, ours against the paper's.
#[must_use]
pub fn table7() -> String {
    let model = CycleModel::paper_calibrated();
    let mut t = TextTable::new(["IALU", "L2MEM", "Clusters", "paper", "model", "err"]);
    for (spec, paper_cycle) in paper::table7() {
        let c = model.derate(&spec);
        t.row([
            spec.alus.to_string(),
            spec.l2_ports.to_string(),
            spec.clusters.to_string(),
            format!("{paper_cycle:.1}"),
            format!("{c:.2}"),
            format!("{:+.0}%", (c - paper_cycle) / paper_cycle * 100.0),
        ]);
    }
    let (alpha, beta) = model.coefficients();
    format!("Table 7: cycle-speed derating (fit alpha={alpha:.4} beta={beta:.6})\n{t}")
}

/// Tables 8, 9, 10: the speedup/selection tables at one cost bound.
#[must_use]
pub fn table8_10(ex: &Exploration, cost_bound: f64) -> String {
    let number = match cost_bound as u32 {
        5 => 8,
        10 => 9,
        _ => 10,
    };
    let table = cfp_dse::speedup_table(ex, cost_bound, &cfp_dse::paper_ranges(cost_bound));
    format!(
        "Table {number}: speedup results for cost < {cost_bound:.1} architectures\n{}",
        cfp_dse::render(&table, ex)
    )
}

/// Figure 1: the Floyd–Steinberg source (our DSL rendition of the
/// paper's C listing).
#[must_use]
pub fn figure1() -> String {
    format!(
        "Figure 1: the Floyd-Steinberg algorithm (kernel DSL)\n\n{}",
        Benchmark::F.source()
    )
}

/// Figure 2: the architecture template.
#[must_use]
pub fn figure2() -> String {
    let spec = ArchSpec::new(8, 4, 256, 2, 4, 4).expect("valid");
    let mut out =
        String::from("Figure 2: the architecture template (example: (8 4 256 2 4 4))\n\n");
    out.push_str("            global connections (explicitly scheduled moves)\n");
    out.push_str("   ===============================================================\n");
    for sh in spec.cluster_shapes() {
        out.push_str(&format!(
            "   | {:>2} regs | {} ALU{} ({} IMUL) {}{}\n",
            sh.regs,
            sh.alus,
            if sh.alus == 1 { " " } else { "s" },
            sh.muls,
            if sh.has_branch { "| BRANCH " } else { "" },
            match (sh.l1_ports, sh.l2_ports) {
                (0, 0) => String::new(),
                (l1, l2) => format!("| mem: {l1}xL1 {l2}xL2"),
            },
        ));
    }
    out.push_str("   ===============================================================\n");
    out.push_str("      L1 memory: 1 port, 3 cycles     L2 memory: p2 ports, l2 cycles\n");
    out
}

/// Figures 3 and 4: cost/speedup scatter diagrams with the
/// best-alternatives frontier, as ASCII art plus CSV.
#[must_use]
pub fn figure(ex: &Exploration, benches: &[Benchmark], title: &str) -> String {
    let mut out = format!("{title}\n");
    for &b in benches {
        let Some(col) = ex.bench_index(b) else {
            continue;
        };
        let pts = cfp_dse::scatter(ex, col);
        let front = cfp_dse::frontier(&pts);
        out.push_str(&format!("\n--- benchmark {b} ---\n"));
        out.push_str(&cfp_dse::report::ascii_scatter(&pts, &front, 70, 18));
    }
    out
}

/// CSV behind Figures 3/4 (for external plotting).
#[must_use]
pub fn figure_csv(ex: &Exploration, benches: &[Benchmark]) -> String {
    let mut t = TextTable::new(["benchmark", "arch", "cost", "speedup", "frontier"]);
    for &b in benches {
        let Some(col) = ex.bench_index(b) else {
            continue;
        };
        let pts = cfp_dse::scatter(ex, col);
        let front: std::collections::HashSet<usize> = cfp_dse::frontier(&pts).into_iter().collect();
        for (i, p) in pts.iter().enumerate() {
            t.row([
                b.to_string(),
                p.spec.to_string().replace(' ', "/"),
                format!("{:.3}", p.cost),
                format!("{:.3}", p.speedup),
                u8::from(front.contains(&i)).to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Extension study: how effective are non-exhaustive search methods —
/// the open question of the paper's §1.1, answered against the
/// exhaustive result.
#[must_use]
pub fn extension_search(ex: &Exploration) -> String {
    let rows = cfp_dse::search::study(ex, 10.0, &[1, 2, 3, 4, 5]);
    let mut t = TextTable::new([
        "strategy",
        "mean evaluations",
        "fraction of space",
        "mean quality",
    ]);
    for (st, evals, quality) in rows {
        t.row([
            st.to_string(),
            format!("{evals:.1}"),
            format!("{:.1}%", evals / ex.archs.len() as f64 * 100.0),
            format!("{:.3}", quality),
        ]);
    }
    format!(
        "Extension: search-method effectiveness (target speedup under cost 10,
         quality = found/exhaustive optimum, averaged over benchmarks and seeds)
{t}"
    )
}

/// Extension study: the paper's clustering correction-factor
/// approximation versus full clustered scheduling.
#[must_use]
pub fn extension_correction(ex: &Exploration) -> String {
    let mut t = TextTable::new([
        "sample base points",
        "mean |err|",
        "max |err|",
        "decision agreement",
    ]);
    for samples in [2_usize, 4, 8, 16] {
        let r = cfp_dse::correction::ablation(ex, samples);
        t.row([
            samples.to_string(),
            format!("{:.1}%", r.mean_abs_err * 100.0),
            format!("{:.1}%", r.max_abs_err * 100.0),
            format!("{:.1}%", r.decision_agreement * 100.0),
        ]);
    }
    format!(
        "Extension: the paper's clustering correction-value approximation (cycles
         predicted from single-cluster results) versus full clustered scheduling
{t}"
    )
}

/// Extension study: VLIW code size per architecture (the encoder's
/// raw versus NOP-compressed long-instruction words) for optimized,
/// 4x-unrolled kernels.
#[must_use]
pub fn extension_codesize() -> String {
    let archs = [
        ArchSpec::baseline(),
        ArchSpec::new(8, 4, 256, 2, 4, 1).expect("valid"),
        ArchSpec::new(16, 8, 512, 4, 4, 4).expect("valid"),
    ];
    let mut t = TextTable::new([
        "benchmark",
        "arch",
        "cycles/iter",
        "raw bytes",
        "compressed",
        "ratio",
    ]);
    for b in [Benchmark::D, Benchmark::A, Benchmark::F, Benchmark::H] {
        let mut k = b.kernel();
        cfp_opt::optimize(&mut k);
        let k = cfp_opt::unroll::unroll(&k, 4);
        for spec in &archs {
            let m = cfp_machine::MachineResources::from_spec(spec);
            let r = cfp_sched::compile(&k, &m);
            match cfp_sched::encode(&r.assignment, &r.schedule, &m) {
                Ok(prog) => {
                    t.row([
                        b.to_string(),
                        spec.to_string(),
                        r.cycles_per_iter().to_string(),
                        prog.raw_bytes().to_string(),
                        prog.compressed_bytes().to_string(),
                        format!(
                            "{:.2}",
                            prog.raw_bytes() as f64 / prog.compressed_bytes() as f64
                        ),
                    ]);
                }
                Err(_) => {
                    // This unroll factor spills here; the experiment would
                    // have rejected it before codegen.
                    t.row([
                        b.to_string(),
                        spec.to_string(),
                        "(spills at x4)".to_owned(),
                        "-".to_owned(),
                        "-".to_owned(),
                        "-".to_owned(),
                    ]);
                }
            }
        }
    }
    format!(
        "Extension: VLIW code size (one loop iteration, unroll 4; raw = every
         slot materialized, compressed = mask + occupied slots + imm pool)
{t}"
    )
}

/// Extension study: software pipelining versus the paper's loop-barrier
/// discipline — what Multiflow-style unroll-and-list-schedule leaves on
/// the table, per benchmark.
#[must_use]
pub fn extension_pipelining() -> String {
    let specs = [
        ArchSpec::new(4, 2, 256, 2, 4, 1).expect("valid"),
        ArchSpec::new(8, 4, 256, 4, 8, 1).expect("valid"),
    ];
    let mut t = TextTable::new([
        "benchmark",
        "arch",
        "barrier cycles/iter",
        "pipelined II",
        "MII bound",
        "IIs tried",
        "gain",
    ]);
    for b in [
        Benchmark::D,
        Benchmark::E,
        Benchmark::G,
        Benchmark::F,
        Benchmark::H,
        Benchmark::A,
    ] {
        let mut k = b.kernel();
        cfp_opt::optimize(&mut k);
        for spec in &specs {
            let m = cfp_machine::MachineResources::from_spec(spec);
            let r = cfp_sched::compile(&k, &m);
            let ddg = cfp_sched::Ddg::build(&r.assignment.code);
            match cfp_sched::modulo_schedule(&r.assignment, &ddg, &m, r.length) {
                Some(ms) => t.row([
                    b.to_string(),
                    spec.to_string(),
                    r.length.to_string(),
                    ms.ii.to_string(),
                    ms.mii.to_string(),
                    ms.ii_attempts.to_string(),
                    format!("{:.2}x", f64::from(r.length) / f64::from(ms.ii)),
                ]),
                None => t.row([
                    b.to_string(),
                    spec.to_string(),
                    r.length.to_string(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                ]),
            };
        }
    }
    format!(
        "Extension: software pipelining vs the loop barrier (un-unrolled kernels;
         the paper's compiler line does not overlap iterations — `gain` is what
         modulo scheduling would recover)
{t}"
    )
}

/// Extension study: what the list scheduler's critical-path priority
/// buys over naive source-order issue, per benchmark (DESIGN.md calls
/// this design choice out).
#[must_use]
pub fn extension_priority() -> String {
    use cfp_sched::{schedule_with, Ddg, Priority};
    let specs = [
        ArchSpec::new(4, 2, 256, 2, 4, 1).expect("valid"),
        ArchSpec::new(16, 8, 512, 4, 4, 4).expect("valid"),
    ];
    let mut t = TextTable::new([
        "benchmark",
        "arch",
        "critical-path",
        "source-order",
        "portfolio (used)",
    ]);
    for b in [Benchmark::A, Benchmark::C, Benchmark::D, Benchmark::H] {
        let mut k = b.kernel();
        cfp_opt::optimize(&mut k);
        let k = cfp_opt::unroll::unroll(&k, 2);
        for spec in &specs {
            let m = cfp_machine::MachineResources::from_spec(spec);
            let r = cfp_sched::compile(&k, &m);
            let ddg = Ddg::build(&r.assignment.code);
            let cp = schedule_with(&r.assignment, &ddg, &m, Priority::CriticalPath);
            let so = schedule_with(&r.assignment, &ddg, &m, Priority::SourceOrder);
            t.row([
                b.to_string(),
                spec.to_string(),
                cp.length.to_string(),
                so.length.to_string(),
                r.length.to_string(),
            ]);
        }
    }
    format!(
        "Extension: list-scheduler priority ablation (schedule length of one
         2x-unrolled iteration; critical-path priority is the default)
{t}"
    )
}

/// Extension study: sensitivity to the spill-penalty model. The one
/// ad-hoc model this reproduction adds (DESIGN.md §2) charges a kernel
/// that spills un-unrolled `2·excess` L2 accesses per iteration plus one
/// reload latency. This exhibit re-evaluates benchmark A — the only
/// benchmark whose headline numbers depend on that model — under scaled
/// penalties, showing the *pathology direction* (A being much slower on
/// register-starved machines) survives any reasonable scale, including
/// zero.
#[must_use]
pub fn extension_spill() -> String {
    use cfp_dse::eval::{residency_budget, PlanCache, UNROLL_SWEEP};
    let machines = [
        (
            "A's own pick",
            ArchSpec::new(8, 4, 256, 4, 4, 4).expect("valid"),
        ),
        (
            "D's pick (starved)",
            ArchSpec::new(16, 4, 128, 4, 4, 8).expect("valid"),
        ),
    ];
    let cache = PlanCache::build(&[Benchmark::A], &[64, 128, 256], &UNROLL_SWEEP);
    let baseline_spec = ArchSpec::baseline();
    let cycle = CycleModel::paper_calibrated();

    // Re-run the unroll-until-spill sweep with a scaled penalty.
    let eval_scaled = |spec: &ArchSpec, scale: f64| -> f64 {
        let machine = cfp_machine::MachineResources::from_spec(spec);
        let budget = residency_budget(spec.regs);
        let mut best = f64::INFINITY;
        for &u in &UNROLL_SWEEP {
            let Some(kernel) = cache.get(Benchmark::A, budget, u) else {
                break;
            };
            let r = cfp_sched::compile(kernel, &machine);
            let fits = r.fits();
            if !fits && u > 1 {
                break;
            }
            let cycles = f64::from(r.length) + scale * f64::from(r.spill_penalty);
            best = best.min(cycles / f64::from(kernel.outputs_per_iter));
            if !fits {
                break;
            }
        }
        best
    };

    let mut t = TextTable::new([
        "penalty scale",
        "A speedup on its own pick",
        "A speedup on D's pick",
        "gap",
    ]);
    for scale in [0.0_f64, 0.5, 1.0, 2.0] {
        let base = eval_scaled(&baseline_spec, scale);
        let su = |spec: &ArchSpec| base / (eval_scaled(spec, scale) * cycle.derate(spec));
        let own = su(&machines[0].1);
        let starved = su(&machines[1].1);
        t.row([
            format!("{scale:.1}x"),
            format!("{own:.2}"),
            format!("{starved:.2}"),
            format!("{:.1}x", own / starved),
        ]);
    }
    format!(
        "Extension: spill-penalty sensitivity (benchmark A; {} vs {}):
         the specialization gap survives any penalty scale, because the
         dominant mechanism is being stuck at unroll 1, not the penalty
{t}",
        machines[0].1, machines[1].1
    )
}

/// Pretty-print the machine description derived for one spec — the
/// payload of `exhibits --mdes-dump SPEC`. Everything the scheduler,
/// simulator, and cost models read about a machine is in this dump;
/// nothing they read is anywhere else.
#[must_use]
pub fn mdes_dump(spec: &ArchSpec) -> String {
    format!(
        "Machine description for {spec} (derived from the spec, not authored)\n\n{}",
        cfp_machine::Mdes::from_spec(spec).render()
    )
}

/// The exploration behind `exhibits --extended`: the paper space doubled
/// with pipelined-Level-2 mirrors ([`DesignSpace::extended`]). `fast`
/// samples every 8th base point (the sampling keeps sibling pairs —
/// the mirrors sit at a fixed offset, so a sampled point's mirror is
/// sampled too).
#[must_use]
pub fn extended_exploration(fast: bool) -> Exploration {
    let space = DesignSpace::extended();
    let step = if fast { 8 } else { 1 };
    let archs: Vec<ArchSpec> = space
        .base_points()
        .iter()
        .step_by(step)
        .flat_map(|b| {
            DesignSpace::cluster_options(b).into_iter().map(|c| {
                let mut s = *b;
                s.clusters = c;
                s
            })
        })
        .collect();
    Exploration::run(&ExploreConfig {
        archs,
        benches: Benchmark::TABLE_COLUMNS.to_vec(),
        ..ExploreConfig::default()
    })
}

/// Table 3-style accounting for the extended-axis run, plus what the
/// new axis bought: each pipelined-L2 architecture is paired with its
/// non-pipelined sibling and compared on the paper's `su` (harmonic-mean
/// speedup). Adding the axis touched only the machine description — the
/// scheduler consumes it through the derived reservation table, so the
/// sweep below exercises the same scheduler binary the paper space uses.
#[must_use]
pub fn extended_axis(ex: &Exploration) -> String {
    let su = |a: usize| Exploration::harmonic_mean(&ex.speedup_row(a));
    let pipelined = ex.archs.iter().filter(|a| a.spec.l2_pipelined).count();
    let best = |want_pipelined: bool| {
        (0..ex.archs.len())
            .filter(|&a| ex.archs[a].spec.l2_pipelined == want_pipelined)
            .map(|a| (su(a), a))
            .max_by(|x, y| x.0.total_cmp(&y.0))
    };
    // Sibling pairs: identical spec up to the pipelining flag.
    let mut wins = 0_usize;
    let mut pairs = 0_usize;
    let mut ratio_sum = 0.0_f64;
    for (pi, p) in ex.archs.iter().enumerate() {
        if !p.spec.l2_pipelined {
            continue;
        }
        let mut plain = p.spec;
        plain.l2_pipelined = false;
        let Some(si) = ex.archs.iter().position(|a| a.spec == plain) else {
            continue;
        };
        let (sp, ss) = (su(pi), su(si));
        if sp.is_finite() && ss.is_finite() && ss > 0.0 {
            pairs += 1;
            ratio_sum += sp / ss;
            if sp > ss {
                wins += 1;
            }
        }
    }
    let mut t = TextTable::new(["quantity", "extended run", "paper (HP 9000/770)"]);
    t.row([
        "# architectures".to_owned(),
        format!("{} ({pipelined} with pipelined L2)", ex.archs.len()),
        "191 (axis not explored)".to_owned(),
    ]);
    t.row([
        "# runs (compilations)".to_owned(),
        ex.stats.compilations.to_string(),
        "5730".to_owned(),
    ]);
    t.row([
        "total time".to_owned(),
        format!("{:.0}s", ex.stats.wall.as_secs_f64()),
        "171449s (48 h)".to_owned(),
    ]);
    if let Some((s, a)) = best(false) {
        t.row([
            "best su, non-pipelined L2".to_owned(),
            format!("{s:.2} at {}", ex.archs[a].spec),
            "n/a".to_owned(),
        ]);
    }
    if let Some((s, a)) = best(true) {
        t.row([
            "best su, pipelined L2".to_owned(),
            format!("{s:.2} at {}", ex.archs[a].spec),
            "n/a".to_owned(),
        ]);
    }
    t.row([
        "sibling pairs pipelining wins".to_owned(),
        format!("{wins} / {pairs}"),
        "n/a".to_owned(),
    ]);
    t.row([
        "mean su gain from pipelining".to_owned(),
        format!(
            "{:.3}x",
            if pairs > 0 {
                ratio_sum / pairs as f64
            } else {
                f64::NAN
            }
        ),
        "n/a".to_owned(),
    ]);
    format!(
        "Extended axis: pipelined vs non-pipelined Level-2 ports (Table 3-style;
         the axis exists only in the machine description — `p` marks pipelined
         specs, e.g. (8 4 256 2 8p 2))
{t}"
    )
}

/// The exploration every speedup exhibit is computed from.
#[must_use]
pub fn run_exploration(fast: bool) -> Exploration {
    match run_exploration_checkpointed(fast, None) {
        Ok(ex) => ex,
        // No checkpoint involved, so this is EmptyConfig/BaselineFailed —
        // a broken build, not an operational condition to recover from.
        Err(e) => panic!("exhibit exploration failed: {e}"),
    }
}

/// [`run_exploration`] with an optional checkpoint journal attached, for
/// the `exhibits` binary's `--checkpoint`/`--resume` flags.
///
/// # Errors
/// Any [`ExploreError`] from the run — with a checkpoint, that includes
/// an unusable or mismatched journal.
pub fn run_exploration_checkpointed(
    fast: bool,
    checkpoint: Option<Checkpoint>,
) -> Result<Exploration, ExploreError> {
    run_exploration_traced(fast, checkpoint, &cfp_obs::NULL)
}

/// [`run_exploration_checkpointed`] with a live span recorder, for the
/// `exhibits` binary's `--trace-out`/`--trace-summary` flags. Results
/// are bit-identical whichever recorder is attached.
///
/// # Errors
/// As [`run_exploration_checkpointed`].
pub fn run_exploration_traced(
    fast: bool,
    checkpoint: Option<Checkpoint>,
    rec: &dyn cfp_obs::Recorder,
) -> Result<Exploration, ExploreError> {
    let config = if fast {
        let space = DesignSpace::paper();
        // Every 8th base point, all arrangements: quick but same shape.
        let archs: Vec<ArchSpec> = space
            .base_points()
            .iter()
            .step_by(8)
            .flat_map(|b| {
                DesignSpace::cluster_options(b).into_iter().map(|c| {
                    let mut s = *b;
                    s.clusters = c;
                    s
                })
            })
            .collect();
        ExploreConfig {
            archs,
            benches: Benchmark::TABLE_COLUMNS.to_vec(),
            checkpoint,
            ..ExploreConfig::default()
        }
    } else {
        ExploreConfig {
            checkpoint,
            ..ExploreConfig::paper()
        }
    };
    Exploration::try_run_traced(&config, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_exhibits_render() {
        assert!(table1().contains("FIR symmetrical filter"));
        assert!(table2().contains("median"));
        assert!(table4().contains("Clusters"));
        assert!(table5().contains("Register ports"));
        assert!(table6().contains("93.4"));
        assert!(table7().contains("7.3"));
        assert!(figure1().contains("kernel halftone_fs"));
        assert!(figure2().contains("BRANCH"));
    }

    #[test]
    fn dynamic_exhibits_render_on_a_tiny_exploration() {
        let cfg = ExploreConfig {
            archs: vec![
                ArchSpec::baseline(),
                ArchSpec::new(4, 2, 128, 1, 4, 1).unwrap(),
            ],
            benches: vec![Benchmark::D, Benchmark::G],
            threads: 1,
            ..ExploreConfig::default()
        };
        let ex = Exploration::run(&cfg);
        let t3 = table3(&ex);
        assert!(t3.contains("# architectures"));
        assert!(t3.contains("quarantined units"), "{t3}");
        assert!(t3.contains("resumed from checkpoint"), "{t3}");
        let t = table8_10(&ex, 10.0);
        assert!(t.contains("Table 9"), "{t}");
        let fig = figure(&ex, &[Benchmark::D], "Figure 3");
        assert!(fig.contains("benchmark D"));
        let csv = figure_csv(&ex, &[Benchmark::D]);
        assert!(csv.lines().count() >= 3);
    }
}
