//! # cfp-bench — exhibit regenerators and benchmark harness
//!
//! One function per table and figure of the paper, each producing the
//! text (or CSV) that corresponds to that exhibit, computed from this
//! repository's models and experiment. The `exhibits` binary drives
//! them:
//!
//! ```sh
//! cargo run --release -p cfp-bench --bin exhibits -- all
//! cargo run --release -p cfp-bench --bin exhibits -- table8 --fast
//! ```
//!
//! Criterion benches (`benches/`) measure the toolchain itself: the
//! retargetable compiler's throughput, the models, the interpreter and
//! cycle-accurate simulator, and a full evaluation step.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exhibits;
